#include "platform/scenario_parser.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "platform/validate.hpp"

namespace mpsoc::platform {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("scenario, line " + std::to_string(line) + ": " +
                           msg);
}

std::string trim(std::string s) {
  auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
  while (!s.empty() && issp(static_cast<unsigned char>(s.back()))) s.pop_back();
  return s;
}

std::uint64_t parseU64(const std::string& s, std::size_t line) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos, 0);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + s + "'");
  }
  // Outside the try: fail() throws, and the catch above must not swallow it.
  if (pos != s.size()) fail(line, "trailing characters in '" + s + "'");
  return v;
}

double parseDouble(const std::string& s, std::size_t line) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    fail(line, "expected a real number, got '" + s + "'");
  }
  if (pos != s.size()) fail(line, "trailing characters in '" + s + "'");
  return v;
}

bool parseBool(const std::string& s, std::size_t line) {
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  fail(line, "expected a boolean, got '" + s + "'");
}

}  // namespace

NamedScenario parseScenario(const std::string& text) {
  NamedScenario out;
  out.name = "scenario";
  PlatformConfig& cfg = out.config;

  std::istringstream iss(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(iss, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (val.empty()) fail(line_no, "empty value for '" + key + "'");

    if (key == "name") {
      out.name = val;
    } else if (key == "protocol") {
      if (val == "stbus") cfg.protocol = Protocol::Stbus;
      else if (val == "ahb") cfg.protocol = Protocol::Ahb;
      else if (val == "axi") cfg.protocol = Protocol::Axi;
      else fail(line_no, "unknown protocol '" + val + "'");
    } else if (key == "topology") {
      if (val == "full") cfg.topology = Topology::Full;
      else if (val == "collapsed") cfg.topology = Topology::Collapsed;
      else if (val == "single-layer") cfg.topology = Topology::SingleLayer;
      else if (val == "noc-mesh") cfg.topology = Topology::NocMesh;
      else fail(line_no, "unknown topology '" + val + "'");
    } else if (key == "memory") {
      if (val == "onchip") cfg.memory = MemoryKind::OnChip;
      else if (val == "lmi") cfg.memory = MemoryKind::Lmi;
      else fail(line_no, "unknown memory kind '" + val + "'");
    } else if (key == "wait_states") {
      cfg.onchip_wait_states = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "stbus_type") {
      const auto t = parseU64(val, line_no);
      if (t < 1 || t > 3) fail(line_no, "stbus_type must be 1..3");
      cfg.stbus_type = static_cast<stbus::StbusType>(t);
    } else if (key == "arbitration") {
      if (val == "fixed-priority") cfg.arbitration = txn::ArbPolicy::FixedPriority;
      else if (val == "round-robin") cfg.arbitration = txn::ArbPolicy::RoundRobin;
      else if (val == "lru") cfg.arbitration = txn::ArbPolicy::LeastRecentlyUsed;
      else if (val == "tdma") cfg.arbitration = txn::ArbPolicy::Tdma;
      else if (val == "lottery") cfg.arbitration = txn::ArbPolicy::Lottery;
      else fail(line_no, "unknown arbitration policy '" + val + "'");
    } else if (key == "message_arbitration") {
      cfg.message_arbitration = parseBool(val, line_no);
    } else if (key == "lightweight_bridges") {
      cfg.force_lightweight_bridges = parseBool(val, line_no);
    } else if (key == "split_bridges") {
      cfg.force_split_bridges = parseBool(val, line_no);
    } else if (key == "mem_bridge_split") {
      cfg.mem_bridge_split = parseBool(val, line_no);
    } else if (key == "lmi_lookahead") {
      cfg.lmi.lookahead = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "lmi_merging") {
      cfg.lmi.opcode_merging = parseBool(val, line_no);
    } else if (key == "lmi_merge_limit") {
      cfg.lmi.merge_limit = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "lmi_divider") {
      cfg.lmi.clock_divider = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_cas") {
      cfg.lmi.timing.cas_latency = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_trcd") {
      cfg.lmi.timing.t_rcd = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_trp") {
      cfg.lmi.timing.t_rp = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_tras") {
      cfg.lmi.timing.t_ras = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_trc") {
      cfg.lmi.timing.t_rc = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_twr") {
      cfg.lmi.timing.t_wr = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_trfc") {
      cfg.lmi.timing.t_rfc = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_trefi") {
      cfg.lmi.timing.t_refi = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "sdram_ddr") {
      cfg.lmi.timing.ddr = parseBool(val, line_no);
    } else if (key == "mem_fifo_depth") {
      cfg.mem_fifo_depth = parseU64(val, line_no);
    } else if (key == "noc_width") {
      cfg.noc_width = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "noc_height") {
      cfg.noc_height = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "master_limit") {
      cfg.master_limit = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "cpu_mhz") {
      cfg.cpu_mhz = parseDouble(val, line_no);
    } else if (key == "workload_scale") {
      cfg.workload_scale = parseDouble(val, line_no);
    } else if (key == "outstanding_override") {
      cfg.agent_outstanding_override =
          static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "burst_override") {
      cfg.agent_burst_override_beats =
          static_cast<std::uint32_t>(parseU64(val, line_no));
    } else if (key == "use_case") {
      if (val == "playback") cfg.use_case = UseCase::Playback;
      else if (val == "record") cfg.use_case = UseCase::Record;
      else fail(line_no, "unknown use_case '" + val + "'");
    } else if (key == "include_cpu") {
      cfg.include_cpu = parseBool(val, line_no);
    } else if (key == "include_dma") {
      cfg.include_dma = parseBool(val, line_no);
    } else if (key == "include_scratchpad") {
      cfg.include_scratchpad = parseBool(val, line_no);
    } else if (key == "scratchpad_wait_states") {
      cfg.scratchpad_wait_states = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "two_phase") {
      cfg.two_phase_workload = parseBool(val, line_no);
    } else if (key == "phase1_end_ps") {
      cfg.phase1_end_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "phase2_end_ps") {
      cfg.phase2_end_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "duration_ps") {
      out.duration_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "seed") {
      cfg.seed = parseU64(val, line_no);
    } else if (key == "kernel_threads") {
      cfg.kernel_threads = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "racecheck") {
      cfg.racecheck = parseBool(val, line_no);
    } else if (key == "verify") {
      cfg.verify = parseBool(val, line_no);
    } else if (key == "statecheck") {
      cfg.statecheck = parseBool(val, line_no);
    } else if (key == "statecheck_at_ps") {
      cfg.statecheck_at_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "statecheck_edges") {
      cfg.statecheck_edges = parseU64(val, line_no);
    } else if (key == "ff_until_ps") {
      cfg.ff_until_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "ff_quantum_ps") {
      cfg.ff_quantum_ps = static_cast<sim::Picos>(parseU64(val, line_no));
    } else if (key == "ff_check") {
      cfg.ff_check = parseBool(val, line_no);
    } else if (key == "ff_check_edges") {
      cfg.ff_check_edges = parseU64(val, line_no);
    } else {
      fail(line_no, "unknown scenario option '" + key + "'");
    }
  }
  const std::string why = validateConfig(cfg, out.duration_ps);
  if (!why.empty()) {
    throw std::runtime_error("scenario '" + out.name + "': " + why);
  }
  if (cfg.two_phase_workload && out.duration_ps == 0) {
    throw std::runtime_error("scenario '" + out.name +
                             "': two_phase workloads are unbounded — set "
                             "duration_ps to a finite simulated time");
  }
  return out;
}

std::string emitScenario(const NamedScenario& scenario) {
  const PlatformConfig& cfg = scenario.config;
  std::ostringstream os;
  auto b = [](bool v) { return v ? "true" : "false"; };
  auto d = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const char* arb = "fixed-priority";
  switch (cfg.arbitration) {
    case txn::ArbPolicy::FixedPriority: arb = "fixed-priority"; break;
    case txn::ArbPolicy::RoundRobin: arb = "round-robin"; break;
    case txn::ArbPolicy::LeastRecentlyUsed: arb = "lru"; break;
    case txn::ArbPolicy::Tdma: arb = "tdma"; break;
    case txn::ArbPolicy::Lottery: arb = "lottery"; break;
  }
  const char* proto = "stbus";
  switch (cfg.protocol) {
    case Protocol::Stbus: proto = "stbus"; break;
    case Protocol::Ahb: proto = "ahb"; break;
    case Protocol::Axi: proto = "axi"; break;
  }
  os << "name = " << scenario.name << "\n"
     << "protocol = " << proto << "\n"
     << "topology = " << toString(cfg.topology) << "\n"
     << "memory = " << (cfg.memory == MemoryKind::Lmi ? "lmi" : "onchip")
     << "\n"
     << "wait_states = " << cfg.onchip_wait_states << "\n"
     << "stbus_type = " << static_cast<unsigned>(cfg.stbus_type) << "\n"
     << "arbitration = " << arb << "\n"
     << "message_arbitration = " << b(cfg.message_arbitration) << "\n"
     << "lightweight_bridges = " << b(cfg.force_lightweight_bridges) << "\n"
     << "split_bridges = " << b(cfg.force_split_bridges) << "\n"
     << "mem_bridge_split = " << b(cfg.mem_bridge_split) << "\n"
     << "lmi_lookahead = " << cfg.lmi.lookahead << "\n"
     << "lmi_merging = " << b(cfg.lmi.opcode_merging) << "\n"
     << "lmi_merge_limit = " << cfg.lmi.merge_limit << "\n"
     << "lmi_divider = " << cfg.lmi.clock_divider << "\n"
     << "sdram_cas = " << cfg.lmi.timing.cas_latency << "\n"
     << "sdram_trcd = " << cfg.lmi.timing.t_rcd << "\n"
     << "sdram_trp = " << cfg.lmi.timing.t_rp << "\n"
     << "sdram_tras = " << cfg.lmi.timing.t_ras << "\n"
     << "sdram_trc = " << cfg.lmi.timing.t_rc << "\n"
     << "sdram_twr = " << cfg.lmi.timing.t_wr << "\n"
     << "sdram_trfc = " << cfg.lmi.timing.t_rfc << "\n"
     << "sdram_trefi = " << cfg.lmi.timing.t_refi << "\n"
     << "sdram_ddr = " << b(cfg.lmi.timing.ddr) << "\n"
     << "mem_fifo_depth = " << cfg.mem_fifo_depth << "\n"
     << "noc_width = " << cfg.noc_width << "\n"
     << "noc_height = " << cfg.noc_height << "\n"
     << "master_limit = " << cfg.master_limit << "\n"
     << "cpu_mhz = " << d(cfg.cpu_mhz) << "\n"
     << "workload_scale = " << d(cfg.workload_scale) << "\n"
     << "outstanding_override = " << cfg.agent_outstanding_override << "\n"
     << "burst_override = " << cfg.agent_burst_override_beats << "\n"
     << "include_cpu = " << b(cfg.include_cpu) << "\n"
     << "include_dma = " << b(cfg.include_dma) << "\n"
     << "include_scratchpad = " << b(cfg.include_scratchpad) << "\n"
     << "scratchpad_wait_states = " << cfg.scratchpad_wait_states << "\n"
     << "use_case = "
     << (cfg.use_case == UseCase::Record ? "record" : "playback") << "\n"
     << "two_phase = " << b(cfg.two_phase_workload) << "\n"
     << "phase1_end_ps = " << cfg.phase1_end_ps << "\n"
     << "phase2_end_ps = " << cfg.phase2_end_ps << "\n"
     << "duration_ps = " << scenario.duration_ps << "\n"
     << "seed = " << cfg.seed << "\n"
     << "kernel_threads = " << cfg.kernel_threads << "\n"
     << "verify = " << b(cfg.verify) << "\n"
     << "racecheck = " << b(cfg.racecheck) << "\n"
     << "statecheck = " << b(cfg.statecheck) << "\n"
     << "statecheck_at_ps = " << cfg.statecheck_at_ps << "\n"
     << "statecheck_edges = " << cfg.statecheck_edges << "\n"
     << "ff_until_ps = " << cfg.ff_until_ps << "\n"
     << "ff_quantum_ps = " << cfg.ff_quantum_ps << "\n"
     << "ff_check = " << b(cfg.ff_check) << "\n"
     << "ff_check_edges = " << cfg.ff_check_edges << "\n";
  return os.str();
}

NamedScenario loadScenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return parseScenario(ss.str());
}

}  // namespace mpsoc::platform
