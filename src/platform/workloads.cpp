#include "platform/workloads.hpp"

#include <cmath>

namespace mpsoc::platform {

namespace {

std::uint64_t scaled(double scale, std::uint64_t quota) {
  return static_cast<std::uint64_t>(std::llround(scale * static_cast<double>(quota)));
}

/// Common two-regime shaping: phase 1 runs the agent at its nominal pace;
/// phase 2 keeps burst trains but inserts long idle gaps (lower mean, more
/// bursty — the second working regime of Fig. 6).
void addPhases(iptg::AgentProfile& p, sim::Picos p1_end, sim::Picos p2_end) {
  iptg::PhaseOverride ph1;
  ph1.begin = 0;
  ph1.end = p1_end;
  ph1.throttle = p.throttle;
  ph1.gap_min = p.gap_min;
  ph1.gap_max = p.gap_max;
  iptg::PhaseOverride ph2;
  ph2.begin = p1_end;
  ph2.end = p2_end;
  ph2.throttle = 1.0;
  ph2.gap_min = 250;
  ph2.gap_max = 1100;
  p.phases = {ph1, ph2};
}

}  // namespace

// The heavy streaming agents (video, DMA) are *saturating*: no artificial
// gaps, deep outstanding capability, message trains — they pump as fast as
// the architecture lets them, so the execution time measures the platform,
// not the workload pacing.  Only genuinely low-rate IPs (audio, peripheral
// DMA) are self-paced.  N5 carries the bulk of the byte traffic — it is the
// "most heavily congested cluster" whose folding defines the collapsed
// variants.
std::vector<IpSpec> referenceWorkload(double scale, bool two_phase,
                                      sim::Picos phase1_end,
                                      sim::Picos phase2_end,
                                      std::uint64_t seed,
                                      UseCase use_case) {
  // Record/timeshift mode reshapes the heavy AV streams: capture doubles,
  // the display path thins to a preview, and the decoder's reference
  // fetches become an encoder's motion-search reads plus bitstream writes.
  const bool record = use_case == UseCase::Record;
  std::vector<IpSpec> out;
  std::uint64_t region_idx = 0;
  auto region = [&region_idx]() {
    return kMemBase + (region_idx++) * kIpRegion;
  };
  auto finish = [&](iptg::AgentProfile& p, std::uint64_t quota) {
    p.base_addr = region();
    p.region_size = kIpRegion / 2;
    p.total_transactions = two_phase ? 0 : scaled(scale, quota);
    if (two_phase) addPhases(p, phase1_end, phase2_end);
  };

  // ---- N1: video decode pipeline (32-bit, 200 MHz) ------------------------
  {
    IpSpec ip{"decrypt", "N1", {}};
    ip.cfg.bytes_per_beat = 4;
    ip.cfg.seed = seed;
    iptg::AgentProfile in;
    in.name = "stream_in";
    in.read_fraction = 1.0;
    in.burst_beats = {{8, 0.7}, {4, 0.3}};
    in.outstanding = 4;
    in.message_len = 4;
    in.priority = 1;
    finish(in, 500);
    iptg::AgentProfile outp;
    outp.name = "stream_out";
    outp.read_fraction = 0.0;
    outp.posted_writes = true;
    outp.burst_beats = {{8, 1.0}};
    outp.outstanding = 4;
    outp.message_len = 4;
    outp.priority = 1;
    outp.after_agent = 0;  // consumes what stream_in produced
    outp.after_count = 8;
    finish(outp, 500);
    ip.cfg.agents = {in, outp};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"decoder", "N1", {}};
    ip.cfg.bytes_per_beat = 4;
    ip.cfg.seed = seed + 1;
    iptg::AgentProfile ref;
    ref.name = "ref_fetch";
    ref.read_fraction = 1.0;
    ref.burst_beats = {{16, 0.4}, {8, 0.6}};
    ref.pattern = iptg::AddressPattern::Strided;
    ref.stride = 256;
    ref.outstanding = 6;
    ref.message_len = 4;
    ref.priority = 2;
    finish(ref, 700);
    iptg::AgentProfile wb;
    wb.name = "frame_wb";
    wb.read_fraction = 0.0;
    wb.posted_writes = true;
    wb.burst_beats = {{16, 0.6}, {8, 0.4}};
    wb.outstanding = 4;
    wb.message_len = 4;
    wb.priority = 2;
    wb.after_agent = 0;
    wb.after_count = 16;
    finish(wb, 500);
    ip.cfg.agents = {ref, wb};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"resizer", "N1", {}};
    ip.cfg.bytes_per_beat = 4;
    ip.cfg.seed = seed + 2;
    iptg::AgentProfile rd;
    rd.name = "line_rd";
    rd.read_fraction = 0.6;
    rd.burst_beats = {{8, 1.0}};
    rd.outstanding = 4;
    rd.message_len = 2;
    rd.priority = 1;
    finish(rd, 500);
    ip.cfg.agents = {rd};
    out.push_back(std::move(ip));
  }

  // ---- N5: AV input/output — the heavily congested cluster (64-bit) -------
  {
    IpSpec ip{"video_in", "N5", {}};
    ip.cfg.bytes_per_beat = 8;
    ip.cfg.seed = seed + 3;
    iptg::AgentProfile w;
    w.name = "capture";
    w.read_fraction = 0.0;
    w.posted_writes = true;
    w.burst_beats = {{16, 0.5}, {8, 0.5}};
    w.outstanding = 8;
    w.message_len = 4;
    w.priority = 3;
    finish(w, record ? 6400 : 4000);
    ip.cfg.agents = {w};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"video_out", "N5", {}};
    ip.cfg.bytes_per_beat = 8;
    ip.cfg.seed = seed + 4;
    iptg::AgentProfile r;
    r.name = "display";
    r.read_fraction = 1.0;
    r.burst_beats = {{16, 0.6}, {8, 0.4}};
    r.outstanding = 8;
    r.message_len = 4;
    r.priority = 3;
    if (record) r.read_fraction = 1.0;  // preview path only
    finish(r, record ? 1200 : 4000);
    ip.cfg.agents = {r};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"audio", "N5", {}};
    ip.cfg.bytes_per_beat = 8;
    ip.cfg.seed = seed + 5;
    iptg::AgentProfile a;
    a.name = "pcm";
    a.read_fraction = 0.5;
    a.burst_beats = {{2, 0.5}, {4, 0.5}};
    a.outstanding = 1;
    a.gap_min = 6;
    a.gap_max = 18;
    a.priority = 2;
    finish(a, 700);
    ip.cfg.agents = {a};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"gfx_dma", "N5", {}};
    ip.cfg.bytes_per_beat = 8;
    ip.cfg.seed = seed + 6;
    iptg::AgentProfile d;
    d.name = "blit";
    d.read_fraction = record ? 0.35 : 0.5;  // encoder emits bitstream
    d.burst_beats = {{16, 0.7}, {8, 0.3}};
    d.outstanding = 8;
    d.message_len = 4;
    d.priority = record ? 2 : 1;
    finish(d, record ? 3600 : 3000);
    ip.cfg.agents = {d};
    out.push_back(std::move(ip));
  }

  // ---- N2: generic I/O DMA (32-bit, 133 MHz) ------------------------------
  {
    IpSpec ip{"eth_dma", "N2", {}};
    ip.cfg.bytes_per_beat = 4;
    ip.cfg.seed = seed + 7;
    iptg::AgentProfile e;
    e.name = "pkt";
    e.read_fraction = 0.5;
    e.burst_beats = {{8, 0.8}, {4, 0.2}};
    e.outstanding = 2;
    e.gap_min = 2;
    e.gap_max = 14;
    e.priority = 1;
    finish(e, 400);
    ip.cfg.agents = {e};
    out.push_back(std::move(ip));
  }
  {
    IpSpec ip{"usb_dma", "N2", {}};
    ip.cfg.bytes_per_beat = 4;
    ip.cfg.seed = seed + 8;
    iptg::AgentProfile u;
    u.name = "bulk";
    u.read_fraction = 0.6;
    u.burst_beats = {{4, 0.6}, {8, 0.4}};
    u.outstanding = 1;
    u.gap_min = 6;
    u.gap_max = 20;
    u.priority = 0;
    finish(u, 300);
    ip.cfg.agents = {u};
    out.push_back(std::move(ip));
  }
  return out;
}

}  // namespace mpsoc::platform
