#include "ahb/ahb_layer.hpp"

#include "sim/check.hpp"
#include "verify/context.hpp"
#include "verify/port_monitor.hpp"

namespace mpsoc::ahb {

using txn::Opcode;
using txn::RequestPtr;

AhbLayer::AhbLayer(sim::ClockDomain& clk, std::string name, AhbLayerConfig cfg)
    : txn::InterconnectBase(clk, std::move(name)), cfg_(cfg), arb_(cfg.arb) {}

void AhbLayer::attachMonitors(verify::VerifyContext& ctx) {
#if MPSOC_VERIFY
  auto ledger = std::make_shared<verify::SharedLedger>();
  ledger->cap = 1;  // no split transactions: one non-posted owner at a time
  for (std::size_t i = 0; i < initiators_.size(); ++i) {
    verify::InitiatorRules rules;
    rules.in_order = true;
    rules.max_outstanding = 1;
    rules.ledger = ledger;
    ctx.add<verify::InitiatorMonitor>(name_ + ".mon.i" + std::to_string(i),
                                      &clk_, *initiators_[i], rules);
  }
#else
  (void)ctx;
#endif
}

void AhbLayer::evaluate() {
  // At most one transaction owns the layer; `advance()` may complete it this
  // cycle, in which case the hidden-handover arbitration immediately grants
  // the next master (the new address phase overlaps the final data beat).
  if (state_ != State::Idle) {
    advance();
  }
  if (state_ == State::Idle) {
    arbitrate();
  }
  // Layer unlocked and every master queue drained: quiesce until a port
  // push wakes us (wired in addInitiator/addTarget).  The O(1) state test
  // keeps the full idle() scan off busy cycles.
  if (state_ == State::Idle && !anyInflight() && idle()) sleep();
}

void AhbLayer::arbitrate() {
  std::vector<txn::Arbiter::Candidate> cands;
  for (std::size_t i = 0; i < initiators_.size(); ++i) {
    auto* p = initiators_[i];
    if (p->req.empty()) continue;
    const RequestPtr& f = p->req.front();
    if (!targets_[route(f->addr)]->req.canPush()) continue;
    cands.push_back({i, f->priority});
  }
  auto winner = arb_.pick(cands, initiators_.size(), now());
  if (!winner) return;

  active_ini_ = *winner;
  active_ = initiators_[active_ini_]->req.pop();
  active_tgt_ = route(active_->addr);
  trackAccept(active_, active_ini_, active_tgt_);
  // The address phase overlaps the previous transaction's final data beat
  // (pipelined handover), so it is not accounted as a separate busy cycle.

  if (active_->op == Opcode::Write) {
    wdata_left_ = active_->beats;
    state_ = State::WriteData;
  } else {
    active_->accepted_ps = clk_.simulator().now();
    targets_[active_tgt_]->req.push(active_);
    state_ = State::WaitResponse;
  }
}

void AhbLayer::advance() {
  switch (state_) {
    case State::WriteData: {
      chan_.markTransfer();
      if (--wdata_left_ == 0) {
        active_->accepted_ps = clk_.simulator().now();
        targets_[active_tgt_]->req.push(active_);
        // A posted write (e.g. re-issued by a bridge) completes at data
        // acceptance: no response will ever arrive.
        if (active_->posted) {
          active_.reset();
          state_ = State::Idle;
        } else {
          state_ = State::WaitResponse;
        }
      }
      break;
    }
    case State::WaitResponse: {
      auto& fifo = targets_[active_tgt_]->rsp;
      if (!fifo.empty() && fifo.front()->req == active_) {
        stream_.rsp = fifo.front();
        stream_.target = active_tgt_;
        stream_.initiator = active_ini_;
        stream_.next_beat = 0;
        state_ = State::Stream;
        // Fall through into streaming this very cycle: the first data beat
        // may already be due.
        advance();
        return;
      }
      chan_.markHeld();  // slave wait states: idle cycles on a locked bus
      break;
    }
    case State::Stream: {
      if (streamBeat(stream_, chan_)) {
        active_.reset();
        state_ = State::Idle;
      }
      break;
    }
    case State::Idle:
      break;
  }
}

bool AhbLayer::idle() const {
  if (state_ != State::Idle || anyInflight()) return false;
  for (const auto* p : initiators_) {
    if (!p->req.empty()) return false;
  }
  return true;
}

}  // namespace mpsoc::ahb
