#pragma once
// AMBA AHB layer model.
//
// A single shared communication channel: two unidirectional data paths (read
// and write) of which only one can be active at any time, pipelined
// address/data phases, bursts to amortise arbitration, non-posted writes.
// As in the paper's model, *split transactions are not implemented*: from
// grant to the last response beat the layer is owned by one transaction, and
// slave wait states surface as idle bus cycles.  Arbitration handover is
// hidden (HGRANT switches while the penultimate beat completes), so
// back-to-back bursts lose no cycles — which is why AHB matches the advanced
// protocols in the single-layer many-to-one scenario (Section 4.1.2) and
// falls apart in multi-layer systems where its non-split semantics keep the
// source layer locked across bridge round trips (Section 4.2).

#include <cstdint>

#include "stats/probes.hpp"
#include "txn/arbiter.hpp"
#include "txn/interconnect.hpp"

namespace mpsoc::ahb {

struct AhbLayerConfig {
  txn::ArbPolicy arb = txn::ArbPolicy::FixedPriority;
};

class AhbLayer final : public txn::InterconnectBase {
 public:
  AhbLayer(sim::ClockDomain& clk, std::string name, AhbLayerConfig cfg = {});

  void evaluate() override;
  bool idle() const override;

  /// The single shared channel (address + both data paths).
  const stats::ChannelUtilization& channel() const { return chan_; }

  /// LT traversal latency: pipelined address phase + first data phase.
  /// LT-EQUIV: tests/test_fastforward.cpp (FfHandoffOracle digest gate)
  sim::Picos ltLatencyPs() const override { return 2 * clk_.period(); }

  /// One InitiatorMonitor per initiator port, all sharing a one-transaction
  /// ledger: AHB has no split transactions, so a single non-posted
  /// transaction owns the layer from grant to last response beat.
  void attachMonitors(verify::VerifyContext& ctx) override;

 private:
  enum class State : std::uint8_t {
    Idle,          ///< no transaction owns the layer
    WriteData,     ///< streaming write data beats master -> slave
    WaitResponse,  ///< request at the slave; waiting for its response
    Stream,        ///< streaming read data / write ack back to the master
  };

  void arbitrate();
  void advance();

  AhbLayerConfig cfg_;
  txn::Arbiter arb_;
  State state_ = State::Idle;
  txn::RequestPtr active_;
  std::size_t active_ini_ = 0;
  std::size_t active_tgt_ = 0;
  std::uint32_t wdata_left_ = 0;
  RspStream stream_;
  stats::ChannelUtilization chan_;

  SIM_STATE_MEMBERS_WITH_BASE(txn::InterconnectBase, arb_, state_, active_,
                              active_ini_, active_tgt_, wdata_left_, stream_,
                              chan_);
  SIM_STATE_EXEMPT(cfg_, "immutable configuration");
};

}  // namespace mpsoc::ahb
