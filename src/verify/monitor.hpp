#pragma once
// Attachable protocol monitors (SVA-assertion style) for the bus, bridge and
// memory models.  A monitor observes a component *non-intrusively* through
// the SyncFifo payload taps (sim/fifo.hpp) or the SDRAM command observer and
// raises ProtocolViolation the moment a protocol rule is broken — the
// simulation equivalent of a bound SystemVerilog assertion module.
//
// Cost model: with MPSOC_VERIFY=OFF the FIFO taps and every hook compile out
// and a monitor can never be attached, so release binaries carry zero
// overhead.  With MPSOC_VERIFY=ON attachment is still opt-in per platform /
// rig (`verify` config flags), so the default-ON build only pays when a test
// asks for checking.

#include <cstdint>
#include <string>

#include "sim/check.hpp"

#ifndef MPSOC_VERIFY
#define MPSOC_VERIFY 0
#endif

namespace mpsoc::verify {

/// Thrown by every protocol monitor.  Derives from InvariantViolation so the
/// existing catch sites (tests, tools) keep working while monitor-specific
/// tests can catch the narrower type.
class ProtocolViolation : public sim::InvariantViolation {
 public:
  ProtocolViolation(sim::CheckContext ctx, std::string detail)
      : sim::InvariantViolation(std::move(ctx), std::move(detail)) {}
};

class Monitor {
 public:
  Monitor(std::string name, const sim::ClockDomain* clk)
      : name_(std::move(name)), clk_(clk) {}
  virtual ~Monitor() = default;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  const std::string& name() const { return name_; }

  /// Number of port/command events this monitor has checked.  Clean-run
  /// tests assert this is non-zero: a monitor that observed nothing proves
  /// nothing (e.g. it was attached to the wrong port).
  std::uint64_t eventsObserved() const { return events_; }

  /// End-of-run audit.  With `expect_drained` (finite workloads run to
  /// completion) a monitor still tracking an unfinished transaction reports
  /// it as a leak; bounded runs pass false.
  virtual void finish(bool expect_drained) const { (void)expect_drained; }

  /// Checkpoint hooks (the MPSOC_STATECHECK oracle rewinds the simulation to
  /// an earlier instant and re-runs it): monitors live outside the component
  /// graph but track in-flight traffic, so a restore must wind their books
  /// back too or the replayed timeline false-positives against stale state.
  /// Overrides must chain the base hooks (events_ lives here).
  virtual void saveCheckpoint() { ckpt_events_ = events_; }
  virtual void restoreCheckpoint() { events_ = ckpt_events_; }

 protected:
  void countEvent() { ++events_; }

  /// Format and throw a ProtocolViolation with full clock context.  In debug
  /// builds the report is printed to stderr first (mirrors raiseInvariant),
  /// so a violation surfacing through a noexcept path still leaves a trace.
  [[noreturn]] void fail(const char* file, int line,
                         const std::string& detail) const;

  std::string name_;
  const sim::ClockDomain* clk_;

 private:
  std::uint64_t events_ = 0;
  std::uint64_t ckpt_events_ = 0;
};

// Check macro for monitor member functions: `expr` is an ostream chain,
// evaluated only on failure.  Calls the enclosing Monitor's fail().
#define MPSOC_MON_CHECK(cond, expr)                                          \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream mon_check_oss__;                                    \
      mon_check_oss__ << expr;                                               \
      fail(__FILE__, __LINE__, mon_check_oss__.str());                       \
    }                                                                        \
  } while (0)

}  // namespace mpsoc::verify
