#pragma once
// End-to-end bridge fidelity monitor.
//
// A Bridge absorbs a transaction on its side-A target port, clones it with a
// fresh id (same root_id) and repacked beats for the side-B bus width, and
// forwards the clone through its side-B initiator port.  This monitor keys
// every check on root_id and asserts that nothing is lost, duplicated or
// corrupted across the crossing:
//   - every side-B clone corresponds to exactly one absorbed side-A original
//     and preserves opcode / address / priority / msg_id,
//   - payload size is conserved modulo width conversion: the clone carries
//     at least the original bytes and at most one extra side-B beat of
//     round-up (txn::repackBeats rounds up to whole beats),
//   - side-A responses return the *original* request object, read data only
//     after the clone was forwarded (store-and-forward), and with the
//     side-A beat count,
//   - at teardown nothing is stuck half-way through the bridge.
//
// Posted side-B forwarding and early write acks are part of the bridge's
// contract (cut-through latency hiding), so a write ack before the forward
// is legal; read data before the forward is not.

#include <cstdint>
#include <deque>
#include <string>

#include "txn/ports.hpp"
#include "verify/monitor.hpp"

#if MPSOC_VERIFY

namespace mpsoc::verify {

class BridgeMonitor final : public Monitor {
 public:
  /// `a_clk` is side A's clock domain (used for violation context);
  /// `width_b` is the side-B bus width in bytes (clone beat width).
  BridgeMonitor(std::string name, const sim::ClockDomain* a_clk,
                txn::TargetPort& a_port, txn::InitiatorPort& b_port,
                std::uint32_t width_b);

  void finish(bool expect_drained) const override;

  void saveCheckpoint() override {
    Monitor::saveCheckpoint();
    ckpt_live_ = live_;
  }
  void restoreCheckpoint() override {
    Monitor::restoreCheckpoint();
    live_ = ckpt_live_;
  }

 private:
  void onAbsorb(const txn::RequestPtr& r);
  void onForward(const txn::RequestPtr& clone);
  void onRspA(const txn::ResponsePtr& r);

  struct Xfer {
    txn::RequestPtr orig;
    bool needs_rsp;  ///< side-A response expected (false for posted writes)
    bool forwarded = false;
    bool responded = false;
  };

  void maybeRetire(std::deque<Xfer>::iterator it);

  std::uint32_t width_b_;
  std::deque<Xfer> live_;  ///< keyed by orig->root_id, absorb order
  std::deque<Xfer> ckpt_live_;
};

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
