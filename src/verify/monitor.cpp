#include "verify/monitor.hpp"

#include <iostream>
#include <utility>

namespace mpsoc::verify {

void Monitor::fail(const char* file, int line,
                   const std::string& detail) const {
  ProtocolViolation ex(sim::checkContext(file, line, name_, clk_), detail);
#ifndef NDEBUG
  std::cerr << ex.what() << std::endl;
#endif
  throw ex;
}

}  // namespace mpsoc::verify
