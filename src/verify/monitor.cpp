#include "verify/monitor.hpp"

#include <iostream>
#include <utility>

namespace mpsoc::verify {

void Monitor::fail(const char* file, int line,
                   const std::string& detail) const {
  ProtocolViolation ex(sim::checkContext(file, line, name_, clk_), detail);
#ifndef NDEBUG
  // One pre-formatted string per report: violations raised by concurrent
  // simulations (sweep workers) must not interleave mid-line.
  std::cerr << std::string(ex.what()) + "\n" << std::flush;
#endif
  throw ex;
}

}  // namespace mpsoc::verify
