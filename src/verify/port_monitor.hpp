#pragma once
// Port-level protocol monitors.
//
// InitiatorMonitor binds to one InitiatorPort of an interconnect engine and
// checks the request/response handshake the way a bound SVA module would
// watch a bus interface:
//   - request legality at issue (burst length, posted-write rules, no
//     duplicate ids in flight),
//   - grant-side outstanding caps (per-initiator and, for AHB, a ledger
//     shared by every initiator on the layer: one non-posted owner at a
//     time),
//   - response pairing: every response matches an accepted request by
//     identity, respects the protocol's ordering rule (in-order for STBus
//     T1/T2 and AHB; out-of-order allowed for STBus T3 and AXI), and carries
//     the right beat count (read: the request's beats, write ack: 1).
//
// TargetMonitor binds to a TargetPort of a memory/slave and checks the
// mirror-image contract: requests are serviced at most once, posted writes
// never produce a response, response beat schedules are causal (first beat
// not in the past, positive beat period for multi-beat data).
//
// All checking happens inside SyncFifo payload taps, so the monitored
// component is not modified and the engine code paths are untouched.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "txn/ports.hpp"
#include "verify/monitor.hpp"

#if MPSOC_VERIFY

namespace mpsoc::verify {

/// Outstanding budget shared by every initiator of one layer.  Models the
/// AHB rule that a single non-posted transaction owns the layer end to end
/// (the layer re-arbitrates only after the response has been streamed).
struct SharedLedger {
  unsigned cap = 1;
  unsigned count = 0;
};

struct InitiatorRules {
  bool in_order = true;          ///< responses must return in acceptance order
  unsigned max_outstanding = 0;  ///< per-initiator cap (0 = uncapped)
  std::shared_ptr<SharedLedger> ledger;  ///< layer-wide cap, shared (AHB)
  std::uint32_t max_burst_beats = 4096;  ///< request sanity cap
};

class InitiatorMonitor final : public Monitor {
 public:
  InitiatorMonitor(std::string name, const sim::ClockDomain* clk,
                   txn::InitiatorPort& port, InitiatorRules rules);

  void finish(bool expect_drained) const override;

  void saveCheckpoint() override {
    Monitor::saveCheckpoint();
    ckpt_queued_ = queued_;
    ckpt_accepted_ = accepted_;
    if (rules_.ledger) ckpt_ledger_count_ = rules_.ledger->count;
  }
  void restoreCheckpoint() override {
    Monitor::restoreCheckpoint();
    queued_ = ckpt_queued_;
    accepted_ = ckpt_accepted_;
    // The ledger is shared by every monitor of the layer; each one rewinds
    // it to the same saved value, so the repeated write is idempotent.
    if (rules_.ledger) rules_.ledger->count = ckpt_ledger_count_;
  }

 private:
  void onReqPush(const txn::RequestPtr& r);
  void onReqPop(const txn::RequestPtr& r);
  void onRspPush(const txn::ResponsePtr& r);

  struct Entry {
    std::uint64_t id;
    txn::RequestPtr req;
  };

  InitiatorRules rules_;
  std::vector<Entry> queued_;   ///< pushed by the master, not yet granted
  std::deque<Entry> accepted_;  ///< granted, response pending (grant order)
  std::vector<Entry> ckpt_queued_;
  std::deque<Entry> ckpt_accepted_;
  unsigned ckpt_ledger_count_ = 0;
};

class TargetMonitor final : public Monitor {
 public:
  TargetMonitor(std::string name, const sim::ClockDomain* clk,
                txn::TargetPort& port);

  void finish(bool expect_drained) const override;

  void saveCheckpoint() override {
    Monitor::saveCheckpoint();
    ckpt_pending_ = pending_;
  }
  void restoreCheckpoint() override {
    Monitor::restoreCheckpoint();
    pending_ = ckpt_pending_;
  }

 private:
  void onReqPush(const txn::RequestPtr& r);
  void onReqPop(const txn::RequestPtr& r);
  void onRspPush(const txn::ResponsePtr& r);

  struct Entry {
    std::uint64_t id;
    txn::RequestPtr req;
    bool expects_rsp;
    bool in_service = false;  ///< popped from the request FIFO by the slave
  };

  std::deque<Entry> pending_;
  std::deque<Entry> ckpt_pending_;
};

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
