#include "verify/port_monitor.hpp"

#if MPSOC_VERIFY

#include <algorithm>
#include <sstream>

namespace mpsoc::verify {

// ---------------------------------------------------------------------------
// InitiatorMonitor

InitiatorMonitor::InitiatorMonitor(std::string name,
                                   const sim::ClockDomain* clk,
                                   txn::InitiatorPort& port,
                                   InitiatorRules rules)
    : Monitor(std::move(name), clk), rules_(std::move(rules)) {
  port.req.addPushTap([this](const txn::RequestPtr& r) { onReqPush(r); });
  port.req.addPopTap([this](const txn::RequestPtr& r) { onReqPop(r); });
  port.rsp.addPushTap([this](const txn::ResponsePtr& r) { onRspPush(r); });
}

void InitiatorMonitor::onReqPush(const txn::RequestPtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr, "null request pushed into initiator port");
  MPSOC_MON_CHECK(r->beats >= 1 && r->beats <= rules_.max_burst_beats,
                  "illegal burst length " << r->beats << " (legal: 1.."
                                          << rules_.max_burst_beats << ")");
  MPSOC_MON_CHECK(r->bytes_per_beat >= 1 && r->bytes_per_beat <= 128,
                  "illegal beat width " << r->bytes_per_beat << " bytes");
  MPSOC_MON_CHECK(!r->posted || r->op == txn::Opcode::Write,
                  "posted attribute on a " << toString(r->op)
                                           << " request (only writes may be "
                                              "posted)");
  for (const auto& e : queued_) {
    MPSOC_MON_CHECK(e.id != r->id, "request id " << r->id
                                                 << " issued while already "
                                                    "queued at this port");
  }
  for (const auto& e : accepted_) {
    MPSOC_MON_CHECK(e.id != r->id, "request id " << r->id
                                                 << " re-issued while still "
                                                    "outstanding");
  }
  queued_.push_back(Entry{r->id, r});
}

void InitiatorMonitor::onReqPop(const txn::RequestPtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr, "null request granted from initiator port");
  auto it = std::find_if(queued_.begin(), queued_.end(),
                         [&](const Entry& e) { return e.id == r->id; });
  MPSOC_MON_CHECK(it != queued_.end(),
                  "bus accepted request id "
                      << r->id << " that was never issued through this port");
  MPSOC_MON_CHECK(it->req == r, "request id " << r->id
                                              << " changed object identity "
                                                 "between issue and grant");
  queued_.erase(it);
  if (r->posted && r->op == txn::Opcode::Write) return;  // fire-and-forget
  accepted_.push_back(Entry{r->id, r});
  MPSOC_MON_CHECK(rules_.max_outstanding == 0 ||
                      accepted_.size() <= rules_.max_outstanding,
                  "initiator exceeds its outstanding cap: "
                      << accepted_.size() << " in flight, limit "
                      << rules_.max_outstanding);
  if (rules_.ledger) {
    ++rules_.ledger->count;
    MPSOC_MON_CHECK(rules_.ledger->count <= rules_.ledger->cap,
                    "layer granted " << rules_.ledger->count
                                     << " concurrent non-posted transactions, "
                                        "shared limit "
                                     << rules_.ledger->cap);
  }
}

void InitiatorMonitor::onRspPush(const txn::ResponsePtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr && r->req != nullptr,
                  "response without a request delivered to initiator port");
  auto it = std::find_if(accepted_.begin(), accepted_.end(),
                         [&](const Entry& e) { return e.id == r->req->id; });
  MPSOC_MON_CHECK(it != accepted_.end(),
                  "response for request id "
                      << r->req->id
                      << " with no matching accepted request (duplicate "
                         "response, never-granted request, or posted write)");
  MPSOC_MON_CHECK(it->req == r->req,
                  "response for request id "
                      << r->req->id
                      << " carries a different Request object than was "
                         "granted");
  if (rules_.in_order) {
    MPSOC_MON_CHECK(it == accepted_.begin(),
                    "out-of-order response: request id "
                        << r->req->id << " completed before oldest id "
                        << accepted_.front().id
                        << " on an in-order protocol");
  }
  if (r->req->op == txn::Opcode::Read) {
    MPSOC_MON_CHECK(r->beats == r->req->beats,
                    "read response carries " << r->beats
                                             << " beats, request asked for "
                                             << r->req->beats);
  } else {
    MPSOC_MON_CHECK(r->beats == 1, "write acknowledge carries "
                                       << r->beats << " beats, expected 1");
  }
  accepted_.erase(it);
  if (rules_.ledger) {
    MPSOC_MON_CHECK(rules_.ledger->count > 0,
                    "shared-layer ledger underflow on response for id "
                        << r->req->id);
    --rules_.ledger->count;
  }
}

void InitiatorMonitor::finish(bool expect_drained) const {
  if (!expect_drained) return;
  if (queued_.empty() && accepted_.empty()) return;
  std::ostringstream oss;
  oss << "port not drained at end of run:";
  for (const auto& e : queued_) oss << " queued(" << e.id << ")";
  for (const auto& e : accepted_) oss << " outstanding(" << e.id << ")";
  fail(__FILE__, __LINE__, oss.str());
}

// ---------------------------------------------------------------------------
// TargetMonitor

TargetMonitor::TargetMonitor(std::string name, const sim::ClockDomain* clk,
                             txn::TargetPort& port)
    : Monitor(std::move(name), clk) {
  port.req.addPushTap([this](const txn::RequestPtr& r) { onReqPush(r); });
  port.req.addPopTap([this](const txn::RequestPtr& r) { onReqPop(r); });
  port.rsp.addPushTap([this](const txn::ResponsePtr& r) { onRspPush(r); });
}

void TargetMonitor::onReqPush(const txn::RequestPtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr, "null request forwarded to target port");
  MPSOC_MON_CHECK(r->beats >= 1, "zero-beat request id " << r->id
                                                         << " reached target");
  for (const auto& e : pending_) {
    MPSOC_MON_CHECK(e.id != r->id, "request id " << r->id
                                                 << " delivered to the target "
                                                    "twice (duplication)");
  }
  Entry e;
  e.id = r->id;
  e.req = r;
  e.expects_rsp = !(r->posted && r->op == txn::Opcode::Write);
  pending_.push_back(e);
}

void TargetMonitor::onReqPop(const txn::RequestPtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr, "null request consumed from target port");
  auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [&](const Entry& e) { return e.id == r->id && !e.in_service; });
  MPSOC_MON_CHECK(it != pending_.end(),
                  "target consumed request id "
                      << r->id
                      << " that was never delivered (or consumed it twice)");
  if (!it->expects_rsp) {
    pending_.erase(it);  // posted write: done once the slave consumes it
    return;
  }
  it->in_service = true;
}

void TargetMonitor::onRspPush(const txn::ResponsePtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr && r->req != nullptr,
                  "response without a request pushed by target");
  auto it = std::find_if(pending_.begin(), pending_.end(), [&](const Entry& e) {
    return e.id == r->req->id;
  });
  MPSOC_MON_CHECK(it != pending_.end(),
                  "target produced a response for request id "
                      << r->req->id
                      << " it does not hold (spurious or duplicate response)");
  MPSOC_MON_CHECK(it->expects_rsp, "target responded to posted write id "
                                       << r->req->id
                                       << " (posted writes take no response)");
  MPSOC_MON_CHECK(it->in_service,
                  "target responded to request id "
                      << r->req->id
                      << " before consuming it from the request FIFO");
  MPSOC_MON_CHECK(it->req == r->req,
                  "response for request id "
                      << r->req->id
                      << " carries a different Request object than delivered");
  if (r->req->op == txn::Opcode::Read) {
    MPSOC_MON_CHECK(r->beats == r->req->beats,
                    "read response carries " << r->beats
                                             << " beats, request asked for "
                                             << r->req->beats);
    if (r->beats > 1) {
      MPSOC_MON_CHECK(r->sched.beat_period > 0,
                      "multi-beat read response with non-positive beat "
                      "period "
                          << r->sched.beat_period << " ps");
    }
  } else {
    MPSOC_MON_CHECK(r->beats == 1, "write acknowledge carries "
                                       << r->beats << " beats, expected 1");
  }
  MPSOC_MON_CHECK(r->sched.first_beat >= clk_->simulator().now(),
                  "acausal beat schedule: first beat at "
                      << r->sched.first_beat << " ps, now is "
                      << clk_->simulator().now() << " ps");
  pending_.erase(it);
}

void TargetMonitor::finish(bool expect_drained) const {
  if (!expect_drained) return;
  if (pending_.empty()) return;
  std::ostringstream oss;
  oss << "target still holds unfinished requests at end of run:";
  for (const auto& e : pending_) {
    oss << " id(" << e.id << (e.in_service ? ",in-service)" : ",queued)");
  }
  fail(__FILE__, __LINE__, oss.str());
}

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
