#pragma once
// SDRAM command-legality monitor.
//
// The SdramDevice model reports every implied device command (PRECHARGE,
// ACTIVATE, READ, WRITE, AUTO-REFRESH) through its command observer.  This
// monitor keeps an independent shadow copy of the bank state machine and
// re-derives the JEDEC timing windows from the SdramTiming parameters —
// tRCD (ACT->CAS), tRP (PRE->ACT), tRAS (ACT->PRE), tRC (ACT->ACT),
// tWR (write recovery before PRE), tRFC (refresh duration) and CAS latency —
// then asserts each command lands inside its legal window.  It also checks
// bank-state legality (no ACTIVATE on an open bank, no CAS on a closed bank
// or the wrong row) and that data-bus transfer windows never overlap.
//
// Because the shadow is derived only from SdramTiming and the command
// stream, a bug in the device's bookkeeping (e.g. forgetting to advance
// pre_ok after a write burst) surfaces as a violation rather than silently
// producing optimistic bandwidth.

#include <cstdint>
#include <string>
#include <vector>

#include "mem/sdram.hpp"
#include "verify/monitor.hpp"

#if MPSOC_VERIFY

namespace mpsoc::verify {

class SdramLegalityMonitor final : public Monitor {
 public:
  SdramLegalityMonitor(std::string name, const sim::ClockDomain* clk,
                       mem::SdramTiming timing, unsigned banks,
                       sim::Picos clk_period);

  /// Feed one device command (wired to SdramDevice::setCommandObserver).
  void onCommand(const mem::SdramCommand& c);

  void saveCheckpoint() override {
    Monitor::saveCheckpoint();
    ckpt_banks_ = banks_;
    ckpt_bus_free_ = bus_free_;
    ckpt_refresh_done_ = refresh_done_;
    ckpt_has_refresh_ = has_refresh_;
  }
  void restoreCheckpoint() override {
    Monitor::restoreCheckpoint();
    banks_ = ckpt_banks_;
    bus_free_ = ckpt_bus_free_;
    refresh_done_ = ckpt_refresh_done_;
    has_refresh_ = ckpt_has_refresh_;
  }

 private:
  sim::Picos cyc(unsigned n) const {
    return static_cast<sim::Picos>(n) * clk_period_;
  }

  struct BankShadow {
    bool open = false;
    std::uint64_t row = 0;
    sim::Picos last_act = 0;
    sim::Picos last_pre = 0;
    sim::Picos wr_end = 0;  ///< end of last write data burst
    sim::Picos rd_end = 0;  ///< end of last read data burst
    bool has_act = false;
    bool has_pre = false;
    bool has_wr = false;
    bool has_rd = false;
  };

  mem::SdramTiming t_;
  sim::Picos clk_period_;
  std::vector<BankShadow> banks_;
  sim::Picos bus_free_ = 0;      ///< data-bus serialisation point
  sim::Picos refresh_done_ = 0;  ///< end of the last AUTO-REFRESH
  bool has_refresh_ = false;
  std::vector<BankShadow> ckpt_banks_;
  sim::Picos ckpt_bus_free_ = 0;
  sim::Picos ckpt_refresh_done_ = 0;
  bool ckpt_has_refresh_ = false;
};

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
