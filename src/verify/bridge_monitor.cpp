#include "verify/bridge_monitor.hpp"

#if MPSOC_VERIFY

#include <algorithm>
#include <sstream>

namespace mpsoc::verify {

BridgeMonitor::BridgeMonitor(std::string name, const sim::ClockDomain* a_clk,
                             txn::TargetPort& a_port,
                             txn::InitiatorPort& b_port, std::uint32_t width_b)
    : Monitor(std::move(name), a_clk), width_b_(width_b) {
  // Absorption point: the bridge slave side consumes the original request.
  a_port.req.addPopTap([this](const txn::RequestPtr& r) { onAbsorb(r); });
  // Forward point: the bridge master side issues the clone on side B.
  b_port.req.addPushTap([this](const txn::RequestPtr& r) { onForward(r); });
  // Return point: the bridge delivers the side-A response.
  a_port.rsp.addPushTap([this](const txn::ResponsePtr& r) { onRspA(r); });
}

void BridgeMonitor::onAbsorb(const txn::RequestPtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr, "bridge absorbed a null request");
  for (const auto& x : live_) {
    MPSOC_MON_CHECK(x.orig->root_id != r->root_id,
                    "bridge absorbed root id " << r->root_id
                                               << " twice (duplication)");
  }
  Xfer x;
  x.orig = r;
  x.needs_rsp = !(r->posted && r->op == txn::Opcode::Write);
  live_.push_back(std::move(x));
}

void BridgeMonitor::onForward(const txn::RequestPtr& clone) {
  countEvent();
  MPSOC_MON_CHECK(clone != nullptr, "bridge forwarded a null request");
  auto it = std::find_if(live_.begin(), live_.end(), [&](const Xfer& x) {
    return x.orig->root_id == clone->root_id;
  });
  MPSOC_MON_CHECK(it != live_.end(),
                  "bridge forwarded root id "
                      << clone->root_id
                      << " without an absorbed original (fabrication)");
  const txn::RequestPtr& orig = it->orig;
  MPSOC_MON_CHECK(!it->forwarded, "bridge forwarded root id "
                                      << clone->root_id
                                      << " twice (duplication)");
  MPSOC_MON_CHECK(clone->id != orig->id,
                  "bridge reused the original request id "
                      << orig->id << " for the side-B clone");
  MPSOC_MON_CHECK(clone->op == orig->op,
                  "opcode corrupted across bridge: absorbed "
                      << toString(orig->op) << ", forwarded "
                      << toString(clone->op));
  MPSOC_MON_CHECK(clone->addr == orig->addr,
                  "address corrupted across bridge: absorbed 0x"
                      << std::hex << orig->addr << ", forwarded 0x"
                      << clone->addr << std::dec);
  MPSOC_MON_CHECK(clone->priority == orig->priority &&
                      clone->msg_id == orig->msg_id,
                  "priority/msg_id corrupted across bridge for root id "
                      << clone->root_id);
  MPSOC_MON_CHECK(clone->bytes_per_beat == width_b_,
                  "clone beat width " << clone->bytes_per_beat
                                      << " bytes does not match side-B bus "
                                         "width "
                                      << width_b_);
  // Width conversion rounds up to whole beats, never down and never by more
  // than one beat: orig_bytes <= clone_bytes < orig_bytes + width_b.
  MPSOC_MON_CHECK(clone->bytes() >= orig->bytes() &&
                      clone->bytes() < orig->bytes() + clone->bytes_per_beat,
                  "payload not conserved across bridge: absorbed "
                      << orig->bytes() << " bytes, forwarded "
                      << clone->bytes() << " bytes at " << clone->bytes_per_beat
                      << " bytes/beat");
  it->forwarded = true;
  maybeRetire(it);
}

void BridgeMonitor::onRspA(const txn::ResponsePtr& r) {
  countEvent();
  MPSOC_MON_CHECK(r != nullptr && r->req != nullptr,
                  "bridge delivered a response without a request");
  auto it = std::find_if(live_.begin(), live_.end(), [&](const Xfer& x) {
    return x.orig->root_id == r->req->root_id;
  });
  MPSOC_MON_CHECK(it != live_.end(),
                  "bridge delivered a response for root id "
                      << r->req->root_id
                      << " it never absorbed (spurious or duplicate)");
  MPSOC_MON_CHECK(it->needs_rsp,
                  "bridge responded to posted write root id "
                      << r->req->root_id << " (no response expected)");
  MPSOC_MON_CHECK(!it->responded, "bridge delivered two responses for root id "
                                      << r->req->root_id);
  MPSOC_MON_CHECK(r->req == it->orig,
                  "side-A response for root id "
                      << r->req->root_id
                      << " does not carry the original Request object (clone "
                         "leaked back across the bridge)");
  if (it->orig->op == txn::Opcode::Read) {
    // Store-and-forward: read data cannot exist before the clone reached
    // side B.  (Write acks may: early_write_ack acknowledges on absorption.)
    MPSOC_MON_CHECK(it->forwarded,
                    "read data for root id "
                        << r->req->root_id
                        << " delivered before the request was forwarded to "
                           "side B");
    MPSOC_MON_CHECK(r->beats == it->orig->beats,
                    "side-A read response carries "
                        << r->beats << " beats, original request asked for "
                        << it->orig->beats);
  } else {
    MPSOC_MON_CHECK(r->beats == 1, "side-A write acknowledge carries "
                                       << r->beats << " beats, expected 1");
  }
  it->responded = true;
  maybeRetire(it);
}

void BridgeMonitor::maybeRetire(std::deque<Xfer>::iterator it) {
  if (it->forwarded && (it->responded || !it->needs_rsp)) live_.erase(it);
}

void BridgeMonitor::finish(bool expect_drained) const {
  if (!expect_drained) return;
  if (live_.empty()) return;
  std::ostringstream oss;
  oss << "transactions stuck inside the bridge at end of run:";
  for (const auto& x : live_) {
    oss << " root(" << x.orig->root_id << (x.forwarded ? ",fwd" : ",held")
        << (x.responded ? ",rsp)" : ",no-rsp)");
  }
  fail(__FILE__, __LINE__, oss.str());
}

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
