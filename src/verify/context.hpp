#pragma once
// VerifyContext: the per-platform registry that owns every attached protocol
// monitor plus the transaction-conservation auditor.
//
// A platform (or rig) that opts into verification creates one VerifyContext,
// walks its components calling attachMonitors(ctx) / setAuditor(), and calls
// finish() at the end of the run.  Monitors raise ProtocolViolation the
// instant a rule is broken; finish() performs the teardown audits (stuck
// transactions in monitors, leaks in the auditor).
//
// With MPSOC_VERIFY=OFF the class still exists (so platform code needs no
// #ifdefs) but can hold no monitors and every hook that would feed it has
// been compiled out — finish() is then a no-op over empty state.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "txn/audit.hpp"
#include "verify/monitor.hpp"

namespace mpsoc::verify {

/// The context is itself a sim::Checkpointable: registering it with the
/// simulator (Simulator::addCheckpointable) rewinds every owned monitor and
/// the conservation auditor together with a state restore, so the statecheck
/// oracle's replayed timeline is not flagged against stale observer books.
class VerifyContext : public sim::Checkpointable {
 public:
  VerifyContext();
  ~VerifyContext();

  VerifyContext(const VerifyContext&) = delete;
  VerifyContext& operator=(const VerifyContext&) = delete;

#if MPSOC_VERIFY
  /// Construct a monitor in place; the context owns it.  Returns a reference
  /// so callers can wire observers (e.g. the SDRAM command observer).
  template <class M, class... Args>
  M& add(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    monitors_.push_back(std::move(m));
    return ref;
  }
#endif

  /// Conservation auditor masters report issue/retire to.
  txn::TxnAuditor& auditor() { return auditor_; }
  const txn::TxnAuditor& auditor() const { return auditor_; }

  std::size_t monitorCount() const { return monitors_.size(); }

  /// Total port/command events checked across all monitors.  Clean-run tests
  /// assert this is non-zero to prove the monitors actually observed traffic.
  std::uint64_t eventsObserved() const;

  /// Teardown audit: every monitor's finish() plus the conservation audit.
  /// `expect_drained` = the workload ran to completion, so anything still in
  /// flight is a leak; pass false after bounded (runFor-style) runs.
  void finish(bool expect_drained) const;

  void saveCheckpoint() override;
  void restoreCheckpoint() override;
  std::string checkpointName() const override { return "verify"; }

 private:
  std::vector<std::unique_ptr<Monitor>> monitors_;
  txn::TxnAuditor auditor_;
};

}  // namespace mpsoc::verify
