#include "verify/context.hpp"

namespace mpsoc::verify {

VerifyContext::VerifyContext() = default;
VerifyContext::~VerifyContext() = default;

std::uint64_t VerifyContext::eventsObserved() const {
  std::uint64_t total = 0;
  for (const auto& m : monitors_) total += m->eventsObserved();
  return total;
}

void VerifyContext::finish(bool expect_drained) const {
  for (const auto& m : monitors_) m->finish(expect_drained);
  auditor_.finish(expect_drained);
}

void VerifyContext::saveCheckpoint() {
  for (const auto& m : monitors_) m->saveCheckpoint();
  auditor_.saveCheckpoint();
}

void VerifyContext::restoreCheckpoint() {
  for (const auto& m : monitors_) m->restoreCheckpoint();
  auditor_.restoreCheckpoint();
}

}  // namespace mpsoc::verify
