#include "verify/sdram_monitor.hpp"

#if MPSOC_VERIFY

#include <sstream>

namespace mpsoc::verify {

SdramLegalityMonitor::SdramLegalityMonitor(std::string name,
                                           const sim::ClockDomain* clk,
                                           mem::SdramTiming timing,
                                           unsigned banks,
                                           sim::Picos clk_period)
    : Monitor(std::move(name), clk), t_(timing), clk_period_(clk_period),
      banks_(banks) {}

void SdramLegalityMonitor::onCommand(const mem::SdramCommand& c) {
  countEvent();
  using Kind = mem::SdramCommand::Kind;

  if (c.kind == Kind::Refresh) {
    // AUTO-REFRESH implicitly precharges every bank: each open bank must
    // satisfy its precharge windows at the refresh instant.
    for (std::size_t i = 0; i < banks_.size(); ++i) {
      BankShadow& b = banks_[i];
      if (b.open) {
        MPSOC_MON_CHECK(!b.has_act || c.at >= b.last_act + cyc(t_.t_ras),
                        "AUTO-REFRESH at " << c.at << " ps precharges bank "
                                           << i << " before tRAS (ACTIVATE at "
                                           << b.last_act << " ps)");
        MPSOC_MON_CHECK(!b.has_wr || c.at >= b.wr_end + cyc(t_.t_wr),
                        "AUTO-REFRESH at " << c.at << " ps inside write "
                                              "recovery of bank "
                                           << i << " (data until " << b.wr_end
                                           << " ps + tWR)");
        MPSOC_MON_CHECK(!b.has_rd || c.at >= b.rd_end,
                        "AUTO-REFRESH at " << c.at
                                           << " ps truncates read data of "
                                              "bank "
                                           << i << " (data until " << b.rd_end
                                           << " ps)");
      }
      b.open = false;
    }
    MPSOC_MON_CHECK(c.data_end >= c.at + cyc(t_.t_rfc),
                    "AUTO-REFRESH window [" << c.at << ", " << c.data_end
                                            << ") ps shorter than tRFC");
    refresh_done_ = c.data_end;
    has_refresh_ = true;
    if (bus_free_ < c.data_end) bus_free_ = c.data_end;
    return;
  }

  MPSOC_MON_CHECK(c.bank < banks_.size(), "command addresses bank "
                                              << c.bank << ", device has "
                                              << banks_.size());
  BankShadow& b = banks_[c.bank];

  switch (c.kind) {
    case Kind::Activate:
      MPSOC_MON_CHECK(!b.open, "ACTIVATE at "
                                   << c.at << " ps on open bank " << c.bank
                                   << " (row " << b.row
                                   << " must be precharged first)");
      MPSOC_MON_CHECK(!b.has_act || c.at >= b.last_act + cyc(t_.t_rc),
                      "ACTIVATE at " << c.at << " ps violates tRC on bank "
                                     << c.bank << " (previous ACTIVATE at "
                                     << b.last_act << " ps)");
      MPSOC_MON_CHECK(!b.has_pre || c.at >= b.last_pre + cyc(t_.t_rp),
                      "ACTIVATE at " << c.at << " ps violates tRP on bank "
                                     << c.bank << " (PRECHARGE at "
                                     << b.last_pre << " ps)");
      MPSOC_MON_CHECK(!has_refresh_ || c.at >= refresh_done_,
                      "ACTIVATE at " << c.at
                                     << " ps during AUTO-REFRESH (busy until "
                                     << refresh_done_ << " ps)");
      b.open = true;
      b.row = c.row;
      b.last_act = c.at;
      b.has_act = true;
      break;

    case Kind::Precharge:
      MPSOC_MON_CHECK(b.open, "PRECHARGE at " << c.at
                                              << " ps on already-closed bank "
                                              << c.bank);
      MPSOC_MON_CHECK(!b.has_act || c.at >= b.last_act + cyc(t_.t_ras),
                      "PRECHARGE at " << c.at << " ps violates tRAS on bank "
                                      << c.bank << " (ACTIVATE at "
                                      << b.last_act << " ps)");
      MPSOC_MON_CHECK(!b.has_wr || c.at >= b.wr_end + cyc(t_.t_wr),
                      "PRECHARGE at " << c.at << " ps violates tWR on bank "
                                      << c.bank << " (write data until "
                                      << b.wr_end << " ps)");
      MPSOC_MON_CHECK(!b.has_rd || c.at >= b.rd_end,
                      "PRECHARGE at " << c.at
                                      << " ps truncates read data on bank "
                                      << c.bank << " (data until " << b.rd_end
                                      << " ps)");
      b.open = false;
      b.last_pre = c.at;
      b.has_pre = true;
      break;

    case Kind::Read:
    case Kind::Write: {
      const bool is_write = c.kind == Kind::Write;
      const char* kind = is_write ? "WRITE" : "READ";
      MPSOC_MON_CHECK(b.open, kind << " at " << c.at << " ps on closed bank "
                                   << c.bank << " (no open row)");
      MPSOC_MON_CHECK(b.row == c.row,
                      kind << " at " << c.at << " ps targets row " << c.row
                           << " but bank " << c.bank << " has row " << b.row
                           << " open");
      MPSOC_MON_CHECK(!b.has_act || c.at >= b.last_act + cyc(t_.t_rcd),
                      kind << " at " << c.at << " ps violates tRCD on bank "
                           << c.bank << " (ACTIVATE at " << b.last_act
                           << " ps)");
      const sim::Picos min_data =
          c.at + (is_write ? clk_period_ : cyc(t_.cas_latency));
      MPSOC_MON_CHECK(c.data_begin >= min_data,
                      kind << " data starts at " << c.data_begin
                           << " ps, earlier than command at " << c.at
                           << " ps plus "
                           << (is_write ? "write latency" : "CAS latency"));
      MPSOC_MON_CHECK(c.data_end > c.data_begin,
                      kind << " with empty data window [" << c.data_begin
                           << ", " << c.data_end << ") ps");
      MPSOC_MON_CHECK(c.data_begin >= bus_free_,
                      kind << " data window starts at " << c.data_begin
                           << " ps while the data bus is busy until "
                           << bus_free_ << " ps (overlapping transfers)");
      MPSOC_MON_CHECK(!has_refresh_ || c.data_begin >= refresh_done_,
                      kind << " data at " << c.data_begin
                           << " ps during AUTO-REFRESH (busy until "
                           << refresh_done_ << " ps)");
      bus_free_ = c.data_end;
      if (is_write) {
        b.wr_end = c.data_end;
        b.has_wr = true;
      } else {
        b.rd_end = c.data_end;
        b.has_rd = true;
      }
      break;
    }

    case Kind::Refresh:
      break;  // handled above
  }
}

}  // namespace mpsoc::verify

#endif  // MPSOC_VERIFY
