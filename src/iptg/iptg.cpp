#include "iptg/iptg.hpp"

#include <algorithm>
#include "sim/check.hpp"
#include <memory>

namespace mpsoc::iptg {

using txn::Opcode;
using txn::RequestPtr;

Iptg::Iptg(sim::ClockDomain& clk, std::string name, txn::InitiatorPort& port,
           IptgConfig cfg)
    : txn::MasterBase(clk, std::move(name), port,
                      [&cfg] {
                        unsigned total = 0;
                        for (const auto& a : cfg.agents) total += a.outstanding;
                        return total ? total : 1;
                      }()),
      cfg_(std::move(cfg)),
      next_msg_id_(sim::Rng::fnv1a(this->name()) | 1) {
  agents_.reserve(cfg_.agents.size());
  for (std::size_t i = 0; i < cfg_.agents.size(); ++i) {
    AgentState st{cfg_.agents[i],
                  sim::Rng(cfg_.seed, this->name() + "." +
                                          cfg_.agents[i].name),
                  0, 0, 0, cfg_.agents[i].base_addr, 0, 0, 0, 0};
    agents_.push_back(std::move(st));
  }
}

const PhaseOverride* Iptg::activePhase(const AgentState& a) const {
  return activePhaseAt(a, clk_.simulator().now());
}

const PhaseOverride* Iptg::activePhaseAt(const AgentState& a,
                                         sim::Picos at) const {
  for (const auto& p : a.profile.phases) {
    if (at >= p.begin && at < p.end) return &p;
  }
  return nullptr;
}

bool Iptg::agentReady(const AgentState& a) const {
  if (a.quotaDone()) return false;
  if (a.outstanding >= a.profile.outstanding) return false;
  if (now() < a.blocked_until) return false;
  if (a.profile.after_agent >= 0) {
    const auto& dep = agents_[static_cast<std::size_t>(a.profile.after_agent)];
    if (dep.retired < a.profile.after_count) return false;
  }
  return true;
}

void Iptg::evaluate() {
  collectResponses();
  // Every agent's quota issued and retired: nothing can ever restart this
  // generator, so quiesce for good.
  if (done()) {
    sleep();
    return;
  }
  if (!port_.req.canPush()) return;

  // One issue slot per cycle shared by all agents, rotating for fairness.
  const std::size_t n = agents_.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t idx = (rr_next_ + k) % n;
    AgentState& a = agents_[idx];
    if (!agentReady(a)) continue;

    // Throttle / gap: statistical pacing (phase overrides win).
    if (a.profile.sequence.empty()) {
      const PhaseOverride* ph = activePhase(a);
      const double throttle = ph ? ph->throttle : a.profile.throttle;
      if (!a.rng.bernoulli(throttle)) {
        // This agent idles this cycle; others may still use the slot.
        continue;
      }
    }

    RequestPtr req = makeRequest(a, idx);
    const bool posted = req->posted && req->op == Opcode::Write;
    if (posted ? !canIssuePosted() : !canIssue()) return;
    issue(req);
    ++a.issued;
    if (!posted) ++a.outstanding;
    else ++a.retired;  // posted writes retire at issue, like MasterBase
    rr_next_ = (idx + 1) % n;
    return;
  }
}

txn::RequestPtr Iptg::makeRequest(AgentState& a, std::size_t agent_idx) {
  auto req = std::make_shared<txn::Request>();
  req->id = txn::nextTransactionId();
  req->root_id = req->id;
  req->bytes_per_beat = cfg_.bytes_per_beat;
  req->priority = a.profile.priority;
  req->tag = static_cast<std::uint32_t>(agent_idx);
  req->source = name() + "." + a.profile.name;

  const PhaseOverride* ph = activePhase(a);
  const std::uint64_t gap_min = ph ? ph->gap_min : a.profile.gap_min;
  const std::uint64_t gap_max = ph ? ph->gap_max : a.profile.gap_max;

  if (!a.profile.sequence.empty()) {
    const SeqEntry& e = a.profile.sequence[a.seq_pos++];
    req->op = e.op;
    req->addr = e.addr;
    req->beats = e.beats;
    a.blocked_until = now() + e.gap_cycles;
  } else {
    req->op = a.rng.bernoulli(a.profile.read_fraction) ? Opcode::Read
                                                       : Opcode::Write;
    // Burst length from the weighted table.
    std::vector<double> w;
    w.reserve(a.profile.burst_beats.size());
    for (const auto& b : a.profile.burst_beats) w.push_back(b.weight);
    req->beats = a.profile.burst_beats[a.rng.weighted(w)].beats;

    const std::uint64_t span = static_cast<std::uint64_t>(req->beats) *
                               cfg_.bytes_per_beat;
    switch (a.profile.pattern) {
      case AddressPattern::Sequential:
        if (a.next_addr + span >
            a.profile.base_addr + a.profile.region_size) {
          a.next_addr = a.profile.base_addr;
        }
        req->addr = a.next_addr;
        a.next_addr += span;
        break;
      case AddressPattern::Strided: {
        if (a.next_addr + span >
            a.profile.base_addr + a.profile.region_size) {
          a.next_addr = a.profile.base_addr;
        }
        req->addr = a.next_addr;
        a.next_addr += std::max<std::uint64_t>(span, a.profile.stride);
        break;
      }
      case AddressPattern::Random: {
        const std::uint64_t slots =
            std::max<std::uint64_t>(1, a.profile.region_size / span);
        req->addr =
            a.profile.base_addr + a.rng.uniformInt(0, slots - 1) * span;
        break;
      }
    }
  }

  req->posted = a.profile.posted_writes && req->op == Opcode::Write;

  // Message grouping: `message_len` consecutive transactions share a msg_id.
  if (a.profile.message_len > 1) {
    if (a.msg_remaining == 0) {
      a.msg_id = next_msg_id_++;
      a.msg_remaining = a.profile.message_len;
    }
    req->msg_id = a.msg_id;
    --a.msg_remaining;
  }

  // Inter-transaction gaps apply at *message* boundaries, so a gapped agent
  // stays bursty: it emits a whole train back-to-back, then idles.
  if (a.profile.sequence.empty() && a.msg_remaining == 0 &&
      gap_max >= gap_min && gap_max > 0) {
    a.blocked_until = now() + a.rng.uniformInt(gap_min, gap_max);
  }
  return req;
}

void Iptg::onResponse(const txn::ResponsePtr& rsp) {
  AgentState& a = agents_[rsp->req->tag];
  SIM_CHECK_CTX(a.outstanding > 0, name_, &clk_,
                "agent " << rsp->req->tag
                         << " response with no outstanding transaction");
  --a.outstanding;
  ++a.retired;
}

bool Iptg::done() const {
  for (const auto& a : agents_) {
    if (!a.quotaDone() || a.outstanding != 0) return false;
  }
  return true;
}

bool Iptg::idle() const { return done(); }

// --- loosely-timed issue path (fast-forward mode) ----------------------------
//
// LT-EQUIV: tests/test_fastforward.cpp (FfHandoffOracle digest gate)
//
// Deterministic analytic consumption of one quantum.  Statistical agents run
// at their *expected* pacing rate (throttle + mean message gap) capped by the
// outstanding/round-trip-latency product; sequence agents walk their entries
// at one issue plus gap_cycles per entry.  No RNG is drawn, so the engine's
// rng streams stay bit-identical to the checkpoint for the accurate region.

namespace {
std::uint64_t ltScale(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return c == 0 ? 0
               : static_cast<std::uint64_t>(
                     static_cast<unsigned __int128>(a) * b / c);
}
}  // namespace

double Iptg::meanBytesPerTxn(const AgentState& a) const {
  double wsum = 0, bsum = 0;
  for (const auto& b : a.profile.burst_beats) {
    wsum += b.weight;
    bsum += b.weight * static_cast<double>(b.beats);
  }
  const double mean_beats = wsum > 0 ? bsum / wsum : 1.0;
  return mean_beats * static_cast<double>(cfg_.bytes_per_beat);
}

sim::LtDemand Iptg::ltPlan(sim::Picos now, sim::Picos quantum,
                           sim::Picos route_latency_ps) {
  lt_plan_.assign(agents_.size(), 0);
  sim::LtDemand d;
  const sim::Picos period = clk_.period();
  const std::uint64_t cycles = static_cast<std::uint64_t>(quantum / period);
  if (cycles == 0) return d;

  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentState& a = agents_[i];
    if (a.quotaDone()) continue;
    if (a.profile.after_agent >= 0) {
      const auto& dep =
          agents_[static_cast<std::size_t>(a.profile.after_agent)];
      // LT commits retire at issue, so a dependency unlocks within the region
      // as soon as the producer's committed quota crosses the threshold.
      if (dep.retired < a.profile.after_count) continue;
    }

    std::uint64_t txns = 0;
    std::uint64_t bytes = 0;
    if (!a.profile.sequence.empty()) {
      std::uint64_t budget = cycles;
      for (std::size_t pos = a.seq_pos; pos < a.profile.sequence.size();
           ++pos) {
        const SeqEntry& e = a.profile.sequence[pos];
        const std::uint64_t cost = 1 + e.gap_cycles;
        if (cost > budget) break;
        budget -= cost;
        ++txns;
        bytes += static_cast<std::uint64_t>(e.beats) * cfg_.bytes_per_beat;
      }
    } else {
      const PhaseOverride* ph = activePhaseAt(a, now);
      const double throttle = ph ? ph->throttle : a.profile.throttle;
      if (throttle <= 0) continue;
      const std::uint64_t gap_min = ph ? ph->gap_min : a.profile.gap_min;
      const std::uint64_t gap_max = ph ? ph->gap_max : a.profile.gap_max;
      const double mean_gap =
          gap_max >= gap_min
              ? static_cast<double>(gap_min + gap_max) / 2.0 /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, a.profile.message_len))
              : 0.0;
      const double cycles_per_txn = 1.0 / throttle + mean_gap;
      double rate = static_cast<double>(cycles) / cycles_per_txn;
      // Outstanding-limited: each transaction occupies a slot for the route
      // round trip.
      const std::uint64_t rt_cycles = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(2 * route_latency_ps / period));
      const double cap = static_cast<double>(a.profile.outstanding) *
                         static_cast<double>(cycles) /
                         static_cast<double>(rt_cycles);
      if (cap < rate) rate = cap;
      txns = static_cast<std::uint64_t>(rate);
      if (a.profile.total_transactions != 0) {
        txns = std::min(txns, a.profile.total_transactions - a.issued);
      }
      bytes = static_cast<std::uint64_t>(static_cast<double>(txns) *
                                         meanBytesPerTxn(a));
    }
    lt_plan_[i] = txns;
    d.transactions += txns;
    d.bytes += bytes;
  }
  return d;
}

sim::LtDemand Iptg::ltCommit(sim::Picos, sim::Picos,
                             const sim::LtDemand& planned,
                             std::uint64_t granted_bytes) {
  sim::LtDemand done_now;
  if (planned.transactions == 0) return done_now;
  for (std::size_t i = 0; i < agents_.size() && i < lt_plan_.size(); ++i) {
    std::uint64_t txns = lt_plan_[i];
    if (txns == 0) continue;
    if (granted_bytes < planned.bytes) {
      txns = ltScale(txns, granted_bytes, planned.bytes);
      if (txns == 0) continue;
    }
    AgentState& a = agents_[i];
    std::uint64_t bytes = 0;
    std::uint64_t read_bytes = 0;
    if (!a.profile.sequence.empty()) {
      txns = std::min<std::uint64_t>(txns,
                                     a.profile.sequence.size() - a.seq_pos);
      for (std::uint64_t k = 0; k < txns; ++k) {
        const SeqEntry& e = a.profile.sequence[a.seq_pos + k];
        const std::uint64_t sz =
            static_cast<std::uint64_t>(e.beats) * cfg_.bytes_per_beat;
        bytes += sz;
        if (e.op == Opcode::Read) read_bytes += sz;
      }
      a.seq_pos += txns;
    } else {
      if (a.profile.total_transactions != 0) {
        txns = std::min(txns, a.profile.total_transactions - a.issued);
      }
      bytes = static_cast<std::uint64_t>(static_cast<double>(txns) *
                                         meanBytesPerTxn(a));
      read_bytes = static_cast<std::uint64_t>(
          static_cast<double>(bytes) * a.profile.read_fraction);
    }
    if (txns == 0) continue;
    // LT transactions retire at commit: issued/retired advance together so
    // quotas and cross-agent dependencies keep working in the LT region.
    a.issued += txns;
    a.retired += txns;
    ltRecord(txns, read_bytes, bytes - read_bytes);
    done_now.transactions += txns;
    done_now.bytes += bytes;
  }
  return done_now;
}

}  // namespace mpsoc::iptg
