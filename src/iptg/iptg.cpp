#include "iptg/iptg.hpp"

#include <algorithm>
#include "sim/check.hpp"
#include <memory>

namespace mpsoc::iptg {

using txn::Opcode;
using txn::RequestPtr;

Iptg::Iptg(sim::ClockDomain& clk, std::string name, txn::InitiatorPort& port,
           IptgConfig cfg)
    : txn::MasterBase(clk, std::move(name), port,
                      [&cfg] {
                        unsigned total = 0;
                        for (const auto& a : cfg.agents) total += a.outstanding;
                        return total ? total : 1;
                      }()),
      cfg_(std::move(cfg)),
      next_msg_id_(sim::Rng::fnv1a(this->name()) | 1) {
  agents_.reserve(cfg_.agents.size());
  for (std::size_t i = 0; i < cfg_.agents.size(); ++i) {
    AgentState st{cfg_.agents[i],
                  sim::Rng(cfg_.seed, this->name() + "." +
                                          cfg_.agents[i].name),
                  0, 0, 0, cfg_.agents[i].base_addr, 0, 0, 0, 0};
    agents_.push_back(std::move(st));
  }
}

const PhaseOverride* Iptg::activePhase(const AgentState& a) const {
  const sim::Picos now = clk_.simulator().now();
  for (const auto& p : a.profile.phases) {
    if (now >= p.begin && now < p.end) return &p;
  }
  return nullptr;
}

bool Iptg::agentReady(const AgentState& a) const {
  if (a.quotaDone()) return false;
  if (a.outstanding >= a.profile.outstanding) return false;
  if (now() < a.blocked_until) return false;
  if (a.profile.after_agent >= 0) {
    const auto& dep = agents_[static_cast<std::size_t>(a.profile.after_agent)];
    if (dep.retired < a.profile.after_count) return false;
  }
  return true;
}

void Iptg::evaluate() {
  collectResponses();
  // Every agent's quota issued and retired: nothing can ever restart this
  // generator, so quiesce for good.
  if (done()) {
    sleep();
    return;
  }
  if (!port_.req.canPush()) return;

  // One issue slot per cycle shared by all agents, rotating for fairness.
  const std::size_t n = agents_.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t idx = (rr_next_ + k) % n;
    AgentState& a = agents_[idx];
    if (!agentReady(a)) continue;

    // Throttle / gap: statistical pacing (phase overrides win).
    if (a.profile.sequence.empty()) {
      const PhaseOverride* ph = activePhase(a);
      const double throttle = ph ? ph->throttle : a.profile.throttle;
      if (!a.rng.bernoulli(throttle)) {
        // This agent idles this cycle; others may still use the slot.
        continue;
      }
    }

    RequestPtr req = makeRequest(a, idx);
    const bool posted = req->posted && req->op == Opcode::Write;
    if (posted ? !canIssuePosted() : !canIssue()) return;
    issue(req);
    ++a.issued;
    if (!posted) ++a.outstanding;
    else ++a.retired;  // posted writes retire at issue, like MasterBase
    rr_next_ = (idx + 1) % n;
    return;
  }
}

txn::RequestPtr Iptg::makeRequest(AgentState& a, std::size_t agent_idx) {
  auto req = std::make_shared<txn::Request>();
  req->id = txn::nextTransactionId();
  req->root_id = req->id;
  req->bytes_per_beat = cfg_.bytes_per_beat;
  req->priority = a.profile.priority;
  req->tag = static_cast<std::uint32_t>(agent_idx);
  req->source = name() + "." + a.profile.name;

  const PhaseOverride* ph = activePhase(a);
  const std::uint64_t gap_min = ph ? ph->gap_min : a.profile.gap_min;
  const std::uint64_t gap_max = ph ? ph->gap_max : a.profile.gap_max;

  if (!a.profile.sequence.empty()) {
    const SeqEntry& e = a.profile.sequence[a.seq_pos++];
    req->op = e.op;
    req->addr = e.addr;
    req->beats = e.beats;
    a.blocked_until = now() + e.gap_cycles;
  } else {
    req->op = a.rng.bernoulli(a.profile.read_fraction) ? Opcode::Read
                                                       : Opcode::Write;
    // Burst length from the weighted table.
    std::vector<double> w;
    w.reserve(a.profile.burst_beats.size());
    for (const auto& b : a.profile.burst_beats) w.push_back(b.weight);
    req->beats = a.profile.burst_beats[a.rng.weighted(w)].beats;

    const std::uint64_t span = static_cast<std::uint64_t>(req->beats) *
                               cfg_.bytes_per_beat;
    switch (a.profile.pattern) {
      case AddressPattern::Sequential:
        if (a.next_addr + span >
            a.profile.base_addr + a.profile.region_size) {
          a.next_addr = a.profile.base_addr;
        }
        req->addr = a.next_addr;
        a.next_addr += span;
        break;
      case AddressPattern::Strided: {
        if (a.next_addr + span >
            a.profile.base_addr + a.profile.region_size) {
          a.next_addr = a.profile.base_addr;
        }
        req->addr = a.next_addr;
        a.next_addr += std::max<std::uint64_t>(span, a.profile.stride);
        break;
      }
      case AddressPattern::Random: {
        const std::uint64_t slots =
            std::max<std::uint64_t>(1, a.profile.region_size / span);
        req->addr =
            a.profile.base_addr + a.rng.uniformInt(0, slots - 1) * span;
        break;
      }
    }
  }

  req->posted = a.profile.posted_writes && req->op == Opcode::Write;

  // Message grouping: `message_len` consecutive transactions share a msg_id.
  if (a.profile.message_len > 1) {
    if (a.msg_remaining == 0) {
      a.msg_id = next_msg_id_++;
      a.msg_remaining = a.profile.message_len;
    }
    req->msg_id = a.msg_id;
    --a.msg_remaining;
  }

  // Inter-transaction gaps apply at *message* boundaries, so a gapped agent
  // stays bursty: it emits a whole train back-to-back, then idles.
  if (a.profile.sequence.empty() && a.msg_remaining == 0 &&
      gap_max >= gap_min && gap_max > 0) {
    a.blocked_until = now() + a.rng.uniformInt(gap_min, gap_max);
  }
  return req;
}

void Iptg::onResponse(const txn::ResponsePtr& rsp) {
  AgentState& a = agents_[rsp->req->tag];
  SIM_CHECK_CTX(a.outstanding > 0, name_, &clk_,
                "agent " << rsp->req->tag
                         << " response with no outstanding transaction");
  --a.outstanding;
  ++a.retired;
}

bool Iptg::done() const {
  for (const auto& a : agents_) {
    if (!a.quotaDone() || a.outstanding != 0) return false;
  }
  return true;
}

bool Iptg::idle() const { return done(); }

}  // namespace mpsoc::iptg
