#pragma once
// IPTG — configurable IP Traffic Generator (a reimplementation of the
// STMicroelectronics SystemC block described in Section 3.1).
//
// An IPTG emulates one real-life IP core as a set of *agents* (internal
// sub-processes), each with its own statistical traffic profile (burst-length
// mix, read/write mix, addressing scheme, inter-transaction gaps, outstanding
// capability) or an explicit transaction *sequence*.  Agents can depend on
// each other through synchronisation points ("agent B starts after agent A
// has completed N transactions"), which reproduces pipelined IP behaviour
// such as decrypt -> decode -> resize chains.
//
// Time-phased profiles let a single run express distinct working regimes
// (the two phases of Fig. 6: an intense steady phase followed by a burstier,
// lower-average phase).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/fastforward.hpp"
#include "sim/rng.hpp"
#include "txn/master.hpp"

namespace mpsoc::iptg {

enum class AddressPattern : std::uint8_t { Sequential, Random, Strided };

/// Weighted burst-length table entry (beats at the IPTG's native bus width).
struct BurstChoice {
  std::uint32_t beats;
  double weight;
};

/// Explicit transaction for sequence mode.
struct SeqEntry {
  txn::Opcode op = txn::Opcode::Read;
  std::uint64_t addr = 0;
  std::uint32_t beats = 1;
  /// Idle cycles after this entry issues, before the next may start.
  std::uint64_t gap_cycles = 0;
};

/// A time-window override of the statistical knobs (working regimes).
struct PhaseOverride {
  sim::Picos begin = 0;
  sim::Picos end = 0;  ///< exclusive
  double throttle = 1.0;
  std::uint64_t gap_min = 0;
  std::uint64_t gap_max = 0;
};

struct AgentProfile {
  std::string name;

  // -- statistical mode ------------------------------------------------
  double read_fraction = 1.0;
  std::vector<BurstChoice> burst_beats{{8, 1.0}};
  AddressPattern pattern = AddressPattern::Sequential;
  std::uint64_t stride = 0;  ///< for Strided
  /// Probability of starting the next transaction on any eligible cycle.
  double throttle = 1.0;
  /// Additional uniform idle gap (cycles) between transactions.
  std::uint64_t gap_min = 0;
  std::uint64_t gap_max = 0;
  std::vector<PhaseOverride> phases;  ///< optional regime schedule

  // -- sequence mode (non-empty overrides statistical mode) --------------
  std::vector<SeqEntry> sequence;

  // -- target region ------------------------------------------------------
  std::uint64_t base_addr = 0;
  std::uint64_t region_size = 1 << 20;

  // -- bus interface capability -------------------------------------------
  unsigned outstanding = 1;  ///< per-agent outstanding transaction limit
  bool posted_writes = false;
  std::uint8_t priority = 0;
  /// Consecutive transactions grouped under one message id (message-based
  /// arbitration keeps them together all the way to the memory controller).
  std::uint64_t message_len = 1;

  // -- workload -------------------------------------------------------------
  /// Transactions to issue; 0 = unbounded (run bounded by simulated time).
  std::uint64_t total_transactions = 0;

  // -- dependencies ---------------------------------------------------------
  int after_agent = -1;           ///< index of the producer agent, or -1
  std::uint64_t after_count = 0;  ///< producer completions needed to start
};

struct IptgConfig {
  std::vector<AgentProfile> agents;
  std::uint32_t bytes_per_beat = 4;  ///< native interface width
  std::uint64_t seed = 1;
};

class Iptg final : public txn::MasterBase, public sim::LtAgent {
 public:
  Iptg(sim::ClockDomain& clk, std::string name, txn::InitiatorPort& port,
       IptgConfig cfg);

  void evaluate() override;
  bool idle() const override;

  /// All agents have exhausted their quotas and every response returned.
  bool done() const;

  std::uint64_t agentIssued(std::size_t i) const { return agents_[i].issued; }
  std::uint64_t agentRetired(std::size_t i) const { return agents_[i].retired; }
  const IptgConfig& config() const { return cfg_; }

  // Loosely-timed issue path (fast-forward mode): agents consume the quantum
  // analytically — sequence agents walk their entries cycle-by-cycle,
  // statistical agents run at their expected pacing rate capped by the
  // outstanding/latency product.  Traffic lands in the lt_* counters only.
  // LT-EQUIV: tests/test_fastforward.cpp (FfHandoffOracle digest gate)
  sim::LtDemand ltPlan(sim::Picos now, sim::Picos quantum,
                       sim::Picos route_latency_ps) override;
  sim::LtDemand ltCommit(sim::Picos now, sim::Picos quantum,
                         const sim::LtDemand& planned,
                         std::uint64_t granted_bytes) override;
  bool ltDone() const override { return done(); }

 protected:
  void onResponse(const txn::ResponsePtr& rsp) override;

 private:
  struct AgentState {
    AgentProfile profile;
    sim::Rng rng;
    std::uint64_t issued = 0;
    std::uint64_t retired = 0;
    unsigned outstanding = 0;
    std::uint64_t next_addr = 0;
    sim::Cycle blocked_until = 0;
    std::size_t seq_pos = 0;
    std::uint64_t msg_remaining = 0;
    std::uint64_t msg_id = 0;

    bool quotaDone() const {
      if (!profile.sequence.empty()) return seq_pos >= profile.sequence.size();
      return profile.total_transactions != 0 &&
             issued >= profile.total_transactions;
    }

    /// profile is per-agent immutable configuration; everything else mutates.
    auto simStateMembers() {
      return std::tie(rng, issued, retired, outstanding, next_addr,
                      blocked_until, seq_pos, msg_remaining, msg_id);
    }
  };

  bool agentReady(const AgentState& a) const;
  txn::RequestPtr makeRequest(AgentState& a, std::size_t agent_idx);
  const PhaseOverride* activePhase(const AgentState& a) const;
  const PhaseOverride* activePhaseAt(const AgentState& a,
                                     sim::Picos at) const;
  /// Weighted mean transaction size of a statistical agent, in bytes.
  double meanBytesPerTxn(const AgentState& a) const;

  IptgConfig cfg_;
  std::vector<AgentState> agents_;
  std::size_t rr_next_ = 0;
  std::uint64_t next_msg_id_;
  /// Per-agent transaction counts of the pending LT plan (quantum-scoped
  /// scratch between ltPlan and ltCommit; never read across a checkpoint).
  std::vector<std::uint64_t> lt_plan_;

  SIM_STATE_MEMBERS_WITH_BASE(txn::MasterBase, agents_, rr_next_,
                              next_msg_id_);
  SIM_STATE_EXEMPT(cfg_, "immutable configuration");
  SIM_STATE_EXEMPT(lt_plan_, "quantum-scoped fast-forward plan scratch");
};

}  // namespace mpsoc::iptg
