#pragma once
// Text front end for IPTG: the paper's IPTGs are driven by "a per-IP
// configuration file, where all the required options and parameters are
// set".  This parser reads a small INI-style dialect into an IptgConfig.
//
//   # ip-level options
//   bytes_per_beat = 8
//   seed = 42
//
//   [agent capture]
//   read_fraction = 0.0
//   bursts = 16:0.5, 8:0.5          # beats:weight list
//   pattern = sequential             # sequential | random | strided
//   stride = 256
//   base_addr = 0x80000000
//   region_size = 0x100000
//   outstanding = 8
//   posted_writes = true
//   priority = 3
//   message_len = 4
//   total_transactions = 1000
//   gap = 10..20                     # uniform inter-message idle cycles
//   after = display:16               # start after agent `display` retires 16
//
//   [agent trace]
//   sequence = R:0x1000:8, W:0x2000:4:2   # op:addr:beats[:gap_cycles]
//
// Errors throw std::runtime_error with the offending line number.

#include <string>

#include "iptg/iptg.hpp"

namespace mpsoc::iptg {

/// Parse a configuration from text.
IptgConfig parseIptgConfig(const std::string& text);

/// Parse a configuration from a file.
IptgConfig loadIptgConfig(const std::string& path);

}  // namespace mpsoc::iptg
