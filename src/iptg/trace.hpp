#pragma once
// Transaction trace capture and replay.
//
// IPTG's sequence mode can "issue transactions according to a specified
// sequence"; the natural source of such sequences is a trace captured at a
// memory interface in a previous run.  TraceRecorder hooks a memory model's
// request observer and records every accepted request; the resulting trace
// can be serialised to text, reloaded, and turned into an IPTG sequence-mode
// agent whose inter-transaction gaps reproduce the recorded arrival times.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "iptg/iptg.hpp"
#include "txn/transaction.hpp"

namespace mpsoc::iptg {

struct TraceRecord {
  sim::Picos time_ps = 0;
  txn::Opcode op = txn::Opcode::Read;
  std::uint64_t addr = 0;
  std::uint32_t beats = 1;
  std::uint32_t bytes_per_beat = 4;
  std::string source;
};

class TraceRecorder {
 public:
  /// Observer to install on a memory model (SimpleMemory / LmiController).
  void record(sim::Picos now, const txn::RequestPtr& req);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// One record per line: "<ps> <R|W> <addr> <beats> <bytes/beat> <source>".
  void write(std::ostream& os) const;

 private:
  std::vector<TraceRecord> records_;
};

/// Parse a trace written by TraceRecorder::write.  Throws std::runtime_error
/// with the line number on malformed input.
std::vector<TraceRecord> parseTrace(std::istream& is);

/// Convert a trace into a sequence-mode agent profile.  Gaps between
/// consecutive entries are reconstructed from the recorded timestamps at the
/// given replay clock period (saturating at 0 for back-to-back entries).
AgentProfile sequenceFromTrace(const std::vector<TraceRecord>& trace,
                               sim::Picos clock_period_ps,
                               std::string agent_name = "replay");

}  // namespace mpsoc::iptg
