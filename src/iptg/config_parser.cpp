#include "iptg/config_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mpsoc::iptg {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("iptg config, line " + std::to_string(line) +
                           ": " + msg);
}

std::string trim(std::string s) {
  auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
  while (!s.empty() && issp(static_cast<unsigned char>(s.back()))) s.pop_back();
  return s;
}

std::vector<std::string> splitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream iss(s);
  while (std::getline(iss, cur, sep)) {
    cur = trim(cur);
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

std::uint64_t parseU64(const std::string& s, std::size_t line) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos, 0);  // handles 0x prefixes
    if (pos != s.size()) fail(line, "trailing characters in number '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + s + "'");
  }
}

double parseDouble(const std::string& s, std::size_t line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) fail(line, "trailing characters in number '" + s + "'");
    return v;
  } catch (const std::exception&) {
    fail(line, "expected a real number, got '" + s + "'");
  }
}

bool parseBool(const std::string& s, std::size_t line) {
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  fail(line, "expected a boolean, got '" + s + "'");
}

/// "a..b" -> {a, b};  "a" -> {a, a}.
std::pair<std::uint64_t, std::uint64_t> parseRange(const std::string& s,
                                                   std::size_t line) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) {
    const std::uint64_t v = parseU64(s, line);
    return {v, v};
  }
  const std::uint64_t lo = parseU64(trim(s.substr(0, dots)), line);
  const std::uint64_t hi = parseU64(trim(s.substr(dots + 2)), line);
  if (hi < lo) fail(line, "range upper bound below lower bound");
  return {lo, hi};
}

}  // namespace

IptgConfig parseIptgConfig(const std::string& text) {
  IptgConfig cfg;
  AgentProfile* agent = nullptr;
  std::vector<std::pair<std::string, std::size_t>> deferred_after;

  std::istringstream iss(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(iss, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    // Section header: [agent NAME]
    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      const std::string inner = trim(line.substr(1, line.size() - 2));
      if (inner.rfind("agent", 0) != 0) {
        fail(line_no, "unknown section '" + inner + "' (expected 'agent <name>')");
      }
      const std::string name = trim(inner.substr(5));
      if (name.empty()) fail(line_no, "agent section needs a name");
      cfg.agents.emplace_back();
      agent = &cfg.agents.back();
      agent->name = name;
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (val.empty()) fail(line_no, "empty value for '" + key + "'");

    if (!agent) {
      // IP-level options.
      if (key == "bytes_per_beat") {
        cfg.bytes_per_beat = static_cast<std::uint32_t>(parseU64(val, line_no));
      } else if (key == "seed") {
        cfg.seed = parseU64(val, line_no);
      } else {
        fail(line_no, "unknown ip-level option '" + key + "'");
      }
      continue;
    }

    // Agent-level options.
    if (key == "read_fraction") {
      agent->read_fraction = parseDouble(val, line_no);
    } else if (key == "bursts") {
      agent->burst_beats.clear();
      for (const auto& item : splitList(val, ',')) {
        const auto colon = item.find(':');
        BurstChoice b;
        if (colon == std::string::npos) {
          b.beats = static_cast<std::uint32_t>(parseU64(item, line_no));
          b.weight = 1.0;
        } else {
          b.beats = static_cast<std::uint32_t>(
              parseU64(trim(item.substr(0, colon)), line_no));
          b.weight = parseDouble(trim(item.substr(colon + 1)), line_no);
        }
        if (b.beats == 0) fail(line_no, "burst length must be positive");
        agent->burst_beats.push_back(b);
      }
      if (agent->burst_beats.empty()) fail(line_no, "empty burst list");
    } else if (key == "pattern") {
      if (val == "sequential") agent->pattern = AddressPattern::Sequential;
      else if (val == "random") agent->pattern = AddressPattern::Random;
      else if (val == "strided") agent->pattern = AddressPattern::Strided;
      else fail(line_no, "unknown pattern '" + val + "'");
    } else if (key == "stride") {
      agent->stride = parseU64(val, line_no);
    } else if (key == "base_addr") {
      agent->base_addr = parseU64(val, line_no);
    } else if (key == "region_size") {
      agent->region_size = parseU64(val, line_no);
    } else if (key == "outstanding") {
      agent->outstanding = static_cast<unsigned>(parseU64(val, line_no));
    } else if (key == "posted_writes") {
      agent->posted_writes = parseBool(val, line_no);
    } else if (key == "priority") {
      agent->priority = static_cast<std::uint8_t>(parseU64(val, line_no));
    } else if (key == "message_len") {
      agent->message_len = parseU64(val, line_no);
    } else if (key == "total_transactions") {
      agent->total_transactions = parseU64(val, line_no);
    } else if (key == "throttle") {
      agent->throttle = parseDouble(val, line_no);
    } else if (key == "gap") {
      const auto [lo, hi] = parseRange(val, line_no);
      agent->gap_min = lo;
      agent->gap_max = hi;
    } else if (key == "after") {
      const auto colon = val.find(':');
      if (colon == std::string::npos) {
        fail(line_no, "'after' expects '<agent name>:<count>'");
      }
      deferred_after.emplace_back(trim(val.substr(0, colon)),
                                  cfg.agents.size() - 1);
      agent->after_count = parseU64(trim(val.substr(colon + 1)), line_no);
    } else if (key == "sequence") {
      agent->sequence.clear();
      for (const auto& item : splitList(val, ',')) {
        const auto parts = splitList(item, ':');
        if (parts.size() < 3 || parts.size() > 4) {
          fail(line_no, "sequence entry must be OP:addr:beats[:gap]");
        }
        SeqEntry e;
        if (parts[0] == "R" || parts[0] == "r") e.op = txn::Opcode::Read;
        else if (parts[0] == "W" || parts[0] == "w") e.op = txn::Opcode::Write;
        else fail(line_no, "sequence op must be R or W");
        e.addr = parseU64(parts[1], line_no);
        e.beats = static_cast<std::uint32_t>(parseU64(parts[2], line_no));
        if (parts.size() == 4) e.gap_cycles = parseU64(parts[3], line_no);
        agent->sequence.push_back(e);
      }
    } else {
      fail(line_no, "unknown agent option '" + key + "'");
    }
  }

  // Resolve 'after' references by agent name.
  for (const auto& [producer_name, consumer_idx] : deferred_after) {
    int found = -1;
    for (std::size_t i = 0; i < cfg.agents.size(); ++i) {
      if (cfg.agents[i].name == producer_name) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      throw std::runtime_error("iptg config: 'after' references unknown agent '" +
                               producer_name + "'");
    }
    if (static_cast<std::size_t>(found) == consumer_idx) {
      throw std::runtime_error("iptg config: agent '" + producer_name +
                               "' cannot wait on itself");
    }
    cfg.agents[consumer_idx].after_agent = found;
  }
  return cfg;
}

IptgConfig loadIptgConfig(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open iptg config '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return parseIptgConfig(ss.str());
}

}  // namespace mpsoc::iptg
