#include "iptg/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mpsoc::iptg {

void TraceRecorder::record(sim::Picos now, const txn::RequestPtr& req) {
  TraceRecord r;
  r.time_ps = now;
  r.op = req->op;
  r.addr = req->addr;
  r.beats = req->beats;
  r.bytes_per_beat = req->bytes_per_beat;
  r.source = req->source;
  records_.push_back(std::move(r));
}

void TraceRecorder::write(std::ostream& os) const {
  for (const auto& r : records_) {
    os << r.time_ps << " " << (r.op == txn::Opcode::Read ? 'R' : 'W') << " 0x"
       << std::hex << r.addr << std::dec << " " << r.beats << " "
       << r.bytes_per_beat << " " << (r.source.empty() ? "-" : r.source)
       << "\n";
  }
}

std::vector<TraceRecord> parseTrace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    char opc = 0;
    std::string addr_s;
    if (!(ls >> r.time_ps >> opc >> addr_s >> r.beats >> r.bytes_per_beat)) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": malformed record");
    }
    ls >> r.source;  // optional
    if (opc == 'R' || opc == 'r') {
      r.op = txn::Opcode::Read;
    } else if (opc == 'W' || opc == 'w') {
      r.op = txn::Opcode::Write;
    } else {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": bad opcode '" + std::string(1, opc) + "'");
    }
    try {
      r.addr = std::stoull(addr_s, nullptr, 0);
    } catch (const std::exception&) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": bad address '" + addr_s + "'");
    }
    out.push_back(std::move(r));
  }
  return out;
}

AgentProfile sequenceFromTrace(const std::vector<TraceRecord>& trace,
                               sim::Picos clock_period_ps,
                               std::string agent_name) {
  AgentProfile p;
  p.name = std::move(agent_name);
  p.sequence.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceRecord& r = trace[i];
    SeqEntry e;
    e.op = r.op;
    e.addr = r.addr;
    e.beats = r.beats;
    // A SeqEntry's gap applies *after* it issues: reconstruct it from the
    // inter-arrival delta to the next record.
    if (i + 1 < trace.size() && clock_period_ps > 0 &&
        trace[i + 1].time_ps > r.time_ps) {
      e.gap_cycles = (trace[i + 1].time_ps - r.time_ps) / clock_period_ps;
    }
    p.sequence.push_back(e);
  }
  return p;
}

}  // namespace mpsoc::iptg
