file(REMOVE_RECURSE
  "CMakeFiles/ddr_tuning.dir/ddr_tuning.cpp.o"
  "CMakeFiles/ddr_tuning.dir/ddr_tuning.cpp.o.d"
  "ddr_tuning"
  "ddr_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddr_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
