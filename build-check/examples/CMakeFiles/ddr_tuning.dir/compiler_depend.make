# Empty compiler generated dependencies file for ddr_tuning.
# This may be replaced when dependencies are built.
