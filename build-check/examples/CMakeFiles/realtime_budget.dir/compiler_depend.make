# Empty compiler generated dependencies file for realtime_budget.
# This may be replaced when dependencies are built.
