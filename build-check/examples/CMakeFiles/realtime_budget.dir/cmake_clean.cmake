file(REMOVE_RECURSE
  "CMakeFiles/realtime_budget.dir/realtime_budget.cpp.o"
  "CMakeFiles/realtime_budget.dir/realtime_budget.cpp.o.d"
  "realtime_budget"
  "realtime_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
