file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_analysis.dir/bottleneck_analysis.cpp.o"
  "CMakeFiles/bottleneck_analysis.dir/bottleneck_analysis.cpp.o.d"
  "bottleneck_analysis"
  "bottleneck_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
