# Empty compiler generated dependencies file for bottleneck_analysis.
# This may be replaced when dependencies are built.
