file(REMOVE_RECURSE
  "CMakeFiles/settopbox.dir/settopbox.cpp.o"
  "CMakeFiles/settopbox.dir/settopbox.cpp.o.d"
  "settopbox"
  "settopbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settopbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
