# Empty compiler generated dependencies file for settopbox.
# This may be replaced when dependencies are built.
