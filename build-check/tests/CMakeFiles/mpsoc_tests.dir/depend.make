# Empty dependencies file for mpsoc_tests.
# This may be replaced when dependencies are built.
