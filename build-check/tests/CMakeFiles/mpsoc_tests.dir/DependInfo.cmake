
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ahb_axi.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_ahb_axi.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_ahb_axi.cpp.o.d"
  "/root/repo/tests/test_bridge.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_bridge.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_bridge.cpp.o.d"
  "/root/repo/tests/test_bridge_matrix.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_bridge_matrix.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_bridge_matrix.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_dma.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_dma.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_dma.cpp.o.d"
  "/root/repo/tests/test_export_vcd.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_export_vcd.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_export_vcd.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_iptg.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_iptg.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_iptg.cpp.o.d"
  "/root/repo/tests/test_iptg_config.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_iptg_config.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_iptg_config.cpp.o.d"
  "/root/repo/tests/test_lmi.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_lmi.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_lmi.cpp.o.d"
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_noc.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_protocol_details.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_protocol_details.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_protocol_details.cpp.o.d"
  "/root/repo/tests/test_scenario_timeline.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_scenario_timeline.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_scenario_timeline.cpp.o.d"
  "/root/repo/tests/test_sdram_property.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_sdram_property.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_sdram_property.cpp.o.d"
  "/root/repo/tests/test_sim_kernel.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_sim_kernel.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_sim_kernel.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stbus_node.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_stbus_node.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_stbus_node.cpp.o.d"
  "/root/repo/tests/test_txn.cpp" "tests/CMakeFiles/mpsoc_tests.dir/test_txn.cpp.o" "gcc" "tests/CMakeFiles/mpsoc_tests.dir/test_txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/core/CMakeFiles/mpsoc_core.dir/DependInfo.cmake"
  "/root/repo/build-check/src/dma/CMakeFiles/mpsoc_dma.dir/DependInfo.cmake"
  "/root/repo/build-check/src/noc/CMakeFiles/mpsoc_noc.dir/DependInfo.cmake"
  "/root/repo/build-check/src/platform/CMakeFiles/mpsoc_platform.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stbus/CMakeFiles/mpsoc_stbus.dir/DependInfo.cmake"
  "/root/repo/build-check/src/ahb/CMakeFiles/mpsoc_ahb.dir/DependInfo.cmake"
  "/root/repo/build-check/src/axi/CMakeFiles/mpsoc_axi.dir/DependInfo.cmake"
  "/root/repo/build-check/src/bridge/CMakeFiles/mpsoc_bridge.dir/DependInfo.cmake"
  "/root/repo/build-check/src/mem/CMakeFiles/mpsoc_mem.dir/DependInfo.cmake"
  "/root/repo/build-check/src/iptg/CMakeFiles/mpsoc_iptg.dir/DependInfo.cmake"
  "/root/repo/build-check/src/cpu/CMakeFiles/mpsoc_cpu.dir/DependInfo.cmake"
  "/root/repo/build-check/src/txn/CMakeFiles/mpsoc_txn.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stats/CMakeFiles/mpsoc_stats.dir/DependInfo.cmake"
  "/root/repo/build-check/src/sim/CMakeFiles/mpsoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
