file(REMOVE_RECURSE
  "../bench/bench_fig5_lmi_instances"
  "../bench/bench_fig5_lmi_instances.pdb"
  "CMakeFiles/bench_fig5_lmi_instances.dir/bench_fig5_lmi_instances.cpp.o"
  "CMakeFiles/bench_fig5_lmi_instances.dir/bench_fig5_lmi_instances.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lmi_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
