# Empty compiler generated dependencies file for bench_fig5_lmi_instances.
# This may be replaced when dependencies are built.
