# Empty compiler generated dependencies file for bench_abl_lmi_opt.
# This may be replaced when dependencies are built.
