file(REMOVE_RECURSE
  "../bench/bench_abl_lmi_opt"
  "../bench/bench_abl_lmi_opt.pdb"
  "CMakeFiles/bench_abl_lmi_opt.dir/bench_abl_lmi_opt.cpp.o"
  "CMakeFiles/bench_abl_lmi_opt.dir/bench_abl_lmi_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lmi_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
