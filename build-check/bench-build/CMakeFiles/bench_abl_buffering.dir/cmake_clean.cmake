file(REMOVE_RECURSE
  "../bench/bench_abl_buffering"
  "../bench/bench_abl_buffering.pdb"
  "CMakeFiles/bench_abl_buffering.dir/bench_abl_buffering.cpp.o"
  "CMakeFiles/bench_abl_buffering.dir/bench_abl_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
