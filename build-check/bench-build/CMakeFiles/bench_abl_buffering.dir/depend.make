# Empty dependencies file for bench_abl_buffering.
# This may be replaced when dependencies are built.
