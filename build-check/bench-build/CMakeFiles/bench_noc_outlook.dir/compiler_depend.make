# Empty compiler generated dependencies file for bench_noc_outlook.
# This may be replaced when dependencies are built.
