file(REMOVE_RECURSE
  "../bench/bench_noc_outlook"
  "../bench/bench_noc_outlook.pdb"
  "CMakeFiles/bench_noc_outlook.dir/bench_noc_outlook.cpp.o"
  "CMakeFiles/bench_noc_outlook.dir/bench_noc_outlook.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_outlook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
