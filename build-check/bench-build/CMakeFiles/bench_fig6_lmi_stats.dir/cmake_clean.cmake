file(REMOVE_RECURSE
  "../bench/bench_fig6_lmi_stats"
  "../bench/bench_fig6_lmi_stats.pdb"
  "CMakeFiles/bench_fig6_lmi_stats.dir/bench_fig6_lmi_stats.cpp.o"
  "CMakeFiles/bench_fig6_lmi_stats.dir/bench_fig6_lmi_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lmi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
