# Empty dependencies file for bench_fig6_lmi_stats.
# This may be replaced when dependencies are built.
