file(REMOVE_RECURSE
  "../bench/bench_sec412_many_to_one"
  "../bench/bench_sec412_many_to_one.pdb"
  "CMakeFiles/bench_sec412_many_to_one.dir/bench_sec412_many_to_one.cpp.o"
  "CMakeFiles/bench_sec412_many_to_one.dir/bench_sec412_many_to_one.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec412_many_to_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
