# Empty dependencies file for bench_sec412_many_to_one.
# This may be replaced when dependencies are built.
