file(REMOVE_RECURSE
  "../bench/bench_abl_messaging"
  "../bench/bench_abl_messaging.pdb"
  "CMakeFiles/bench_abl_messaging.dir/bench_abl_messaging.cpp.o"
  "CMakeFiles/bench_abl_messaging.dir/bench_abl_messaging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
