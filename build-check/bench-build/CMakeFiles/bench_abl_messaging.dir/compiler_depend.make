# Empty compiler generated dependencies file for bench_abl_messaging.
# This may be replaced when dependencies are built.
