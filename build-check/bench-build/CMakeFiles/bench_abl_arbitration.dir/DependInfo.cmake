
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_arbitration.cpp" "bench-build/CMakeFiles/bench_abl_arbitration.dir/bench_abl_arbitration.cpp.o" "gcc" "bench-build/CMakeFiles/bench_abl_arbitration.dir/bench_abl_arbitration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/core/CMakeFiles/mpsoc_core.dir/DependInfo.cmake"
  "/root/repo/build-check/src/platform/CMakeFiles/mpsoc_platform.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stbus/CMakeFiles/mpsoc_stbus.dir/DependInfo.cmake"
  "/root/repo/build-check/src/ahb/CMakeFiles/mpsoc_ahb.dir/DependInfo.cmake"
  "/root/repo/build-check/src/axi/CMakeFiles/mpsoc_axi.dir/DependInfo.cmake"
  "/root/repo/build-check/src/bridge/CMakeFiles/mpsoc_bridge.dir/DependInfo.cmake"
  "/root/repo/build-check/src/mem/CMakeFiles/mpsoc_mem.dir/DependInfo.cmake"
  "/root/repo/build-check/src/iptg/CMakeFiles/mpsoc_iptg.dir/DependInfo.cmake"
  "/root/repo/build-check/src/cpu/CMakeFiles/mpsoc_cpu.dir/DependInfo.cmake"
  "/root/repo/build-check/src/dma/CMakeFiles/mpsoc_dma.dir/DependInfo.cmake"
  "/root/repo/build-check/src/txn/CMakeFiles/mpsoc_txn.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stats/CMakeFiles/mpsoc_stats.dir/DependInfo.cmake"
  "/root/repo/build-check/src/sim/CMakeFiles/mpsoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
