file(REMOVE_RECURSE
  "../bench/bench_abl_arbitration"
  "../bench/bench_abl_arbitration.pdb"
  "CMakeFiles/bench_abl_arbitration.dir/bench_abl_arbitration.cpp.o"
  "CMakeFiles/bench_abl_arbitration.dir/bench_abl_arbitration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
