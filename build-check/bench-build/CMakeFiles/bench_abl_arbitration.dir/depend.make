# Empty dependencies file for bench_abl_arbitration.
# This may be replaced when dependencies are built.
