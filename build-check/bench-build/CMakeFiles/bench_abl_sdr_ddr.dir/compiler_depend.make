# Empty compiler generated dependencies file for bench_abl_sdr_ddr.
# This may be replaced when dependencies are built.
