file(REMOVE_RECURSE
  "../bench/bench_abl_sdr_ddr"
  "../bench/bench_abl_sdr_ddr.pdb"
  "CMakeFiles/bench_abl_sdr_ddr.dir/bench_abl_sdr_ddr.cpp.o"
  "CMakeFiles/bench_abl_sdr_ddr.dir/bench_abl_sdr_ddr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sdr_ddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
