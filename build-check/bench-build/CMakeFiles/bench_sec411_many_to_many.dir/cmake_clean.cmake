file(REMOVE_RECURSE
  "../bench/bench_sec411_many_to_many"
  "../bench/bench_sec411_many_to_many.pdb"
  "CMakeFiles/bench_sec411_many_to_many.dir/bench_sec411_many_to_many.cpp.o"
  "CMakeFiles/bench_sec411_many_to_many.dir/bench_sec411_many_to_many.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec411_many_to_many.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
