# Empty compiler generated dependencies file for bench_sec411_many_to_many.
# This may be replaced when dependencies are built.
