file(REMOVE_RECURSE
  "../bench/bench_fig4_memory_speed"
  "../bench/bench_fig4_memory_speed.pdb"
  "CMakeFiles/bench_fig4_memory_speed.dir/bench_fig4_memory_speed.cpp.o"
  "CMakeFiles/bench_fig4_memory_speed.dir/bench_fig4_memory_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memory_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
