# Empty dependencies file for bench_fig4_memory_speed.
# This may be replaced when dependencies are built.
