file(REMOVE_RECURSE
  "../bench/bench_fig3_platform_instances"
  "../bench/bench_fig3_platform_instances.pdb"
  "CMakeFiles/bench_fig3_platform_instances.dir/bench_fig3_platform_instances.cpp.o"
  "CMakeFiles/bench_fig3_platform_instances.dir/bench_fig3_platform_instances.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_platform_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
