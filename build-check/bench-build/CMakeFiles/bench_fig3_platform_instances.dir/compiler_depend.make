# Empty compiler generated dependencies file for bench_fig3_platform_instances.
# This may be replaced when dependencies are built.
