file(REMOVE_RECURSE
  "../bench/bench_abl_bridges"
  "../bench/bench_abl_bridges.pdb"
  "CMakeFiles/bench_abl_bridges.dir/bench_abl_bridges.cpp.o"
  "CMakeFiles/bench_abl_bridges.dir/bench_abl_bridges.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_bridges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
