# Empty compiler generated dependencies file for bench_abl_bridges.
# This may be replaced when dependencies are built.
