file(REMOVE_RECURSE
  "libmpsoc_ahb.a"
)
