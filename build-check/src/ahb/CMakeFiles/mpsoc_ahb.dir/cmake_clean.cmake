file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_ahb.dir/ahb_layer.cpp.o"
  "CMakeFiles/mpsoc_ahb.dir/ahb_layer.cpp.o.d"
  "libmpsoc_ahb.a"
  "libmpsoc_ahb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_ahb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
