# Empty dependencies file for mpsoc_ahb.
# This may be replaced when dependencies are built.
