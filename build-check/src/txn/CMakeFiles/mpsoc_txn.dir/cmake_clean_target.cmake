file(REMOVE_RECURSE
  "libmpsoc_txn.a"
)
