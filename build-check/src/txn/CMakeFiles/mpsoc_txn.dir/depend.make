# Empty dependencies file for mpsoc_txn.
# This may be replaced when dependencies are built.
