
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/master.cpp" "src/txn/CMakeFiles/mpsoc_txn.dir/master.cpp.o" "gcc" "src/txn/CMakeFiles/mpsoc_txn.dir/master.cpp.o.d"
  "/root/repo/src/txn/transaction.cpp" "src/txn/CMakeFiles/mpsoc_txn.dir/transaction.cpp.o" "gcc" "src/txn/CMakeFiles/mpsoc_txn.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/sim/CMakeFiles/mpsoc_sim.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stats/CMakeFiles/mpsoc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
