file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_txn.dir/master.cpp.o"
  "CMakeFiles/mpsoc_txn.dir/master.cpp.o.d"
  "CMakeFiles/mpsoc_txn.dir/transaction.cpp.o"
  "CMakeFiles/mpsoc_txn.dir/transaction.cpp.o.d"
  "libmpsoc_txn.a"
  "libmpsoc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
