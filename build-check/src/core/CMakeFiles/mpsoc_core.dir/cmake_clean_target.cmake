file(REMOVE_RECURSE
  "libmpsoc_core.a"
)
