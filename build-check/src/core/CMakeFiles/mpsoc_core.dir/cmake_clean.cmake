file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_core.dir/analysis.cpp.o"
  "CMakeFiles/mpsoc_core.dir/analysis.cpp.o.d"
  "CMakeFiles/mpsoc_core.dir/experiment.cpp.o"
  "CMakeFiles/mpsoc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mpsoc_core.dir/export.cpp.o"
  "CMakeFiles/mpsoc_core.dir/export.cpp.o.d"
  "CMakeFiles/mpsoc_core.dir/rigs.cpp.o"
  "CMakeFiles/mpsoc_core.dir/rigs.cpp.o.d"
  "libmpsoc_core.a"
  "libmpsoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
