# Empty dependencies file for mpsoc_core.
# This may be replaced when dependencies are built.
