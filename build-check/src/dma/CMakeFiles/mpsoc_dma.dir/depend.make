# Empty dependencies file for mpsoc_dma.
# This may be replaced when dependencies are built.
