file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_dma.dir/dma.cpp.o"
  "CMakeFiles/mpsoc_dma.dir/dma.cpp.o.d"
  "libmpsoc_dma.a"
  "libmpsoc_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
