file(REMOVE_RECURSE
  "libmpsoc_dma.a"
)
