# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-check/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("txn")
subdirs("stbus")
subdirs("ahb")
subdirs("axi")
subdirs("mem")
subdirs("bridge")
subdirs("iptg")
subdirs("dma")
subdirs("noc")
subdirs("cpu")
subdirs("platform")
subdirs("core")
