file(REMOVE_RECURSE
  "libmpsoc_cpu.a"
)
