# Empty dependencies file for mpsoc_cpu.
# This may be replaced when dependencies are built.
