file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_cpu.dir/cache.cpp.o"
  "CMakeFiles/mpsoc_cpu.dir/cache.cpp.o.d"
  "CMakeFiles/mpsoc_cpu.dir/st220.cpp.o"
  "CMakeFiles/mpsoc_cpu.dir/st220.cpp.o.d"
  "libmpsoc_cpu.a"
  "libmpsoc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
