file(REMOVE_RECURSE
  "libmpsoc_platform.a"
)
