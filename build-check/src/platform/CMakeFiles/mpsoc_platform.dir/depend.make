# Empty dependencies file for mpsoc_platform.
# This may be replaced when dependencies are built.
