file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_platform.dir/platform.cpp.o"
  "CMakeFiles/mpsoc_platform.dir/platform.cpp.o.d"
  "CMakeFiles/mpsoc_platform.dir/scenario_parser.cpp.o"
  "CMakeFiles/mpsoc_platform.dir/scenario_parser.cpp.o.d"
  "CMakeFiles/mpsoc_platform.dir/workloads.cpp.o"
  "CMakeFiles/mpsoc_platform.dir/workloads.cpp.o.d"
  "libmpsoc_platform.a"
  "libmpsoc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
