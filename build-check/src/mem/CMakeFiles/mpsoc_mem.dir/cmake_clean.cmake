file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_mem.dir/lmi_controller.cpp.o"
  "CMakeFiles/mpsoc_mem.dir/lmi_controller.cpp.o.d"
  "CMakeFiles/mpsoc_mem.dir/sdram.cpp.o"
  "CMakeFiles/mpsoc_mem.dir/sdram.cpp.o.d"
  "CMakeFiles/mpsoc_mem.dir/simple_memory.cpp.o"
  "CMakeFiles/mpsoc_mem.dir/simple_memory.cpp.o.d"
  "libmpsoc_mem.a"
  "libmpsoc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
