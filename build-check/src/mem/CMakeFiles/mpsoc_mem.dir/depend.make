# Empty dependencies file for mpsoc_mem.
# This may be replaced when dependencies are built.
