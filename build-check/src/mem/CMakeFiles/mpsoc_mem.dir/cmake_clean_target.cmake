file(REMOVE_RECURSE
  "libmpsoc_mem.a"
)
