# Empty dependencies file for mpsoc_noc.
# This may be replaced when dependencies are built.
