file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_noc.dir/mesh.cpp.o"
  "CMakeFiles/mpsoc_noc.dir/mesh.cpp.o.d"
  "CMakeFiles/mpsoc_noc.dir/router.cpp.o"
  "CMakeFiles/mpsoc_noc.dir/router.cpp.o.d"
  "libmpsoc_noc.a"
  "libmpsoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
