file(REMOVE_RECURSE
  "libmpsoc_noc.a"
)
