# Empty dependencies file for mpsoc_axi.
# This may be replaced when dependencies are built.
