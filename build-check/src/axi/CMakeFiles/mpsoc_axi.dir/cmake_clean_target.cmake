file(REMOVE_RECURSE
  "libmpsoc_axi.a"
)
