file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_axi.dir/axi_bus.cpp.o"
  "CMakeFiles/mpsoc_axi.dir/axi_bus.cpp.o.d"
  "libmpsoc_axi.a"
  "libmpsoc_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
