# CMake generated Testfile for 
# Source directory: /root/repo/src/axi
# Build directory: /root/repo/build-check/src/axi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
