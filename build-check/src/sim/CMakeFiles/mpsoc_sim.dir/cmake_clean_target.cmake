file(REMOVE_RECURSE
  "libmpsoc_sim.a"
)
