# Empty dependencies file for mpsoc_sim.
# This may be replaced when dependencies are built.
