file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_sim.dir/check.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/check.cpp.o.d"
  "CMakeFiles/mpsoc_sim.dir/clock.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/clock.cpp.o.d"
  "CMakeFiles/mpsoc_sim.dir/component.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/component.cpp.o.d"
  "CMakeFiles/mpsoc_sim.dir/log.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/log.cpp.o.d"
  "CMakeFiles/mpsoc_sim.dir/simulator.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mpsoc_sim.dir/vcd.cpp.o"
  "CMakeFiles/mpsoc_sim.dir/vcd.cpp.o.d"
  "libmpsoc_sim.a"
  "libmpsoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
