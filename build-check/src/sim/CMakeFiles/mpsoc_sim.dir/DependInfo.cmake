
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/check.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/check.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/check.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/clock.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/clock.cpp.o.d"
  "/root/repo/src/sim/component.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/component.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/component.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/log.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/log.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/mpsoc_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/mpsoc_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
