file(REMOVE_RECURSE
  "libmpsoc_bridge.a"
)
