# Empty dependencies file for mpsoc_bridge.
# This may be replaced when dependencies are built.
