file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_bridge.dir/bridge.cpp.o"
  "CMakeFiles/mpsoc_bridge.dir/bridge.cpp.o.d"
  "libmpsoc_bridge.a"
  "libmpsoc_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
