file(REMOVE_RECURSE
  "libmpsoc_iptg.a"
)
