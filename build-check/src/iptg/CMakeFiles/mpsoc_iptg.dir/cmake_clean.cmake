file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_iptg.dir/config_parser.cpp.o"
  "CMakeFiles/mpsoc_iptg.dir/config_parser.cpp.o.d"
  "CMakeFiles/mpsoc_iptg.dir/iptg.cpp.o"
  "CMakeFiles/mpsoc_iptg.dir/iptg.cpp.o.d"
  "CMakeFiles/mpsoc_iptg.dir/trace.cpp.o"
  "CMakeFiles/mpsoc_iptg.dir/trace.cpp.o.d"
  "libmpsoc_iptg.a"
  "libmpsoc_iptg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_iptg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
