# Empty dependencies file for mpsoc_iptg.
# This may be replaced when dependencies are built.
