
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iptg/config_parser.cpp" "src/iptg/CMakeFiles/mpsoc_iptg.dir/config_parser.cpp.o" "gcc" "src/iptg/CMakeFiles/mpsoc_iptg.dir/config_parser.cpp.o.d"
  "/root/repo/src/iptg/iptg.cpp" "src/iptg/CMakeFiles/mpsoc_iptg.dir/iptg.cpp.o" "gcc" "src/iptg/CMakeFiles/mpsoc_iptg.dir/iptg.cpp.o.d"
  "/root/repo/src/iptg/trace.cpp" "src/iptg/CMakeFiles/mpsoc_iptg.dir/trace.cpp.o" "gcc" "src/iptg/CMakeFiles/mpsoc_iptg.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/txn/CMakeFiles/mpsoc_txn.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stats/CMakeFiles/mpsoc_stats.dir/DependInfo.cmake"
  "/root/repo/build-check/src/sim/CMakeFiles/mpsoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
