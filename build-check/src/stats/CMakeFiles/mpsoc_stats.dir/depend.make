# Empty dependencies file for mpsoc_stats.
# This may be replaced when dependencies are built.
