file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_stats.dir/probes.cpp.o"
  "CMakeFiles/mpsoc_stats.dir/probes.cpp.o.d"
  "CMakeFiles/mpsoc_stats.dir/report.cpp.o"
  "CMakeFiles/mpsoc_stats.dir/report.cpp.o.d"
  "libmpsoc_stats.a"
  "libmpsoc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
