file(REMOVE_RECURSE
  "libmpsoc_stats.a"
)
