file(REMOVE_RECURSE
  "libmpsoc_stbus.a"
)
