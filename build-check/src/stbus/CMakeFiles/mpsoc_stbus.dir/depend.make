# Empty dependencies file for mpsoc_stbus.
# This may be replaced when dependencies are built.
