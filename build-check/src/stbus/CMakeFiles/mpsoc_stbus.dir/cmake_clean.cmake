file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_stbus.dir/node.cpp.o"
  "CMakeFiles/mpsoc_stbus.dir/node.cpp.o.d"
  "libmpsoc_stbus.a"
  "libmpsoc_stbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_stbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
