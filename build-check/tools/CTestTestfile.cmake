# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-check/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mpsoc_lint "/root/repo/build-check/tools/mpsoc_lint" "/root/repo/src" "/root/repo/tests" "/root/repo/tools")
set_tests_properties(mpsoc_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
