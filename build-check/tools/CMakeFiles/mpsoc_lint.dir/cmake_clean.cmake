file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_lint.dir/mpsoc_lint.cpp.o"
  "CMakeFiles/mpsoc_lint.dir/mpsoc_lint.cpp.o.d"
  "mpsoc_lint"
  "mpsoc_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
