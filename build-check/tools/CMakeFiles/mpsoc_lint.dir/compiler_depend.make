# Empty compiler generated dependencies file for mpsoc_lint.
# This may be replaced when dependencies are built.
