file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_run.dir/mpsoc_run.cpp.o"
  "CMakeFiles/mpsoc_run.dir/mpsoc_run.cpp.o.d"
  "mpsoc_run"
  "mpsoc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
