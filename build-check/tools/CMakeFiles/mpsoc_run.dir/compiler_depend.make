# Empty compiler generated dependencies file for mpsoc_run.
# This may be replaced when dependencies are built.
